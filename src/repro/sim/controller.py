"""FR-FCFS memory controller with refresh and RowHammer-mitigation hooks.

The controller services read/write requests from the cores over a single
channel and rank (Table 6), scheduling with the FR-FCFS policy: row-buffer
hits first, then oldest-first.  It issues all-bank refresh every tREFI and
exposes two hooks to a RowHammer mitigation mechanism:

* ``on_activate(bank, row, cycle)`` is called for every demand activation and
  returns rows the mechanism wants refreshed (performed as internal
  victim-refresh requests that occupy the bank for a full row cycle), and
* ``on_refresh(cycle)`` is called at every periodic refresh command (used by
  mechanisms such as ProHIT that piggyback victim refreshes on refresh).

The controller also accounts separately for the DRAM bank-time consumed by
demand traffic, by nominal refresh, and by the mitigation mechanism, which
is what the bandwidth-overhead metric of Figure 10a reports.

Indexed bank buckets
--------------------
The fast scheduler never scans the request queues.  Each demand queue is
indexed three ways, maintained incrementally at enqueue/issue time:

* **per-bank FIFOs** (``_read_fifo`` / ``_write_fifo``) keep each bank's
  pending requests in arrival order, so the oldest request of a bank is a
  head read;
* **per-(bank, row) buckets** (``_read_rows`` / ``_write_rows``) keep the
  requests targeting one row in arrival order, so when a bank opens a row
  its hit set -- and the oldest hit -- is one dictionary lookup;
* **head-of-index sequence mirrors** (``_read_head_seq`` / ``_read_hit_seq``
  and the write twins) expose each bank's oldest live request and oldest
  live row hit as flat integers, so the FR-FCFS selection loop touches only
  int arrays (bank classification comes from the pending/hit counters and
  the mirrored open rows and command timers) and the deques behind the
  index are touched exactly once per issued command.

Issued requests are removed lazily: they carry a ``popped`` tombstone flag
and are dropped when they surface at a deque head (every head read --
selection, hit recount, issue-time head advance -- cleans the dead prefix,
and live counts bound the garbage to the queue depth), while live sizes are
tracked in plain integer counters (``read_len`` / ``write_len``).  The flat
``read_queue`` / ``write_queue`` lists are retained as the *reference*
scheduler's representation and are compacted periodically in fast mode.

FR-FCFS over the index: the oldest ready row hit is the minimum, over
hit-ready banks, of each bank's row-bucket head sequence number; the
oldest-first fallback is the minimum, over precharge/activate-ready banks,
of each bank's FIFO head sequence number.  Every queued request of such a
bank is a candidate, so the bank-head minimum equals the full queue scan's
choice -- the golden-trace suite pins this equivalence against the
scan-based reference scheduler for every mechanism.

Event horizon
-------------
All controller state changes happen at *events*: a command issue, a read
completion, a periodic refresh, or a mitigation timer.
:meth:`MemoryController.next_event_cycle` returns the earliest future cycle
at which any of those could occur, computed from the same per-bank index in
O(banks with work).  Between two events, ticking the controller is a no-op
by construction; the ``_quiet_until`` cache remembers a proven horizon and
is *incrementally lowered* when cores enqueue new work (each new request
contributes its own bank-local bound) instead of being discarded, so an
enqueue no longer forces a full rescan.

Mitigation timers
-----------------
A mechanism that schedules autonomous work registers a timer through the
:class:`MitigationEventPort` handed to its ``register_events`` hook; the
controller dispatches ``on_timer`` at the registered cycle in **both** step
modes and folds the timer into every horizon.  Legacy mechanisms that
override ``next_event_cycle`` instead are still polled (the compat shim);
mechanisms that do neither cost nothing on the horizon path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.sim.bank import BankState, RankState
from repro.sim.config import SystemConfig
from repro.sim.events import NEVER as _NEVER
from repro.sim.requests import MemoryRequest, RequestType

#: Flat-list tombstone threshold before the fast path compacts a queue.
_COMPACT_MIN_DEAD = 48


@dataclass(slots=True)
class ControllerStats:
    """Cumulative controller statistics."""

    cycles: int = 0
    reads_serviced: int = 0
    writes_serviced: int = 0
    demand_activates: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    refresh_commands: int = 0
    refresh_busy_cycles: int = 0
    mitigation_refreshes: int = 0
    mitigation_busy_cycles: int = 0
    demand_busy_cycles: int = 0
    read_latency_total: int = 0
    read_latency_samples: int = 0

    @property
    def average_read_latency(self) -> float:
        """Mean read latency in DRAM cycles."""
        if self.read_latency_samples == 0:
            return 0.0
        return self.read_latency_total / self.read_latency_samples


class MitigationEventPort:
    """Timer-registration surface the controller hands to a mitigation.

    A mechanism receives one of these through its ``register_events`` hook
    and may (re)schedule a single autonomous timer; the controller
    guarantees ``on_timer(cycle)`` is dispatched at the registered cycle in
    both step modes and that no event-driven fast-forward jumps over it.
    """

    __slots__ = ("_controller",)

    def __init__(self, controller: "MemoryController") -> None:
        self._controller = controller

    def schedule_timer(self, cycle: int) -> None:
        """Arrange for ``on_timer`` to be dispatched at ``cycle``."""
        controller = self._controller
        controller._mitigation_timer = cycle
        if cycle < controller._quiet_until:
            controller._quiet_until = cycle
        if controller._k_open is not None:
            s = controller._k_s
            controller._k_timer[s] = cycle
            q = controller._k_quiet
            if cycle < q[s]:
                q[s] = cycle

    def cancel_timer(self) -> None:
        """Drop the pending timer, if any."""
        controller = self._controller
        controller._mitigation_timer = _NEVER
        if controller._k_open is not None:
            controller._k_timer[controller._k_s] = _NEVER

    @property
    def timer_cycle(self) -> int:
        """Currently registered timer cycle (:data:`~repro.sim.events.NEVER`
        when none is pending)."""
        return self._controller._mitigation_timer


class MemoryController:
    """Single-channel FR-FCFS memory controller.

    Parameters
    ----------
    config:
        System configuration (bank count, queue depths, timings).
    mitigation:
        Optional RowHammer mitigation mechanism implementing the
        :class:`repro.mitigations.base.MitigationMechanism` interface.  The
        mechanism may also override the refresh interval (increased refresh
        rate) through its ``refresh_interval_multiplier``.
    """

    def __init__(self, config: SystemConfig, mitigation=None) -> None:
        self.config = config
        self.mitigation = mitigation
        timings = config.timings
        if mitigation is not None:
            multiplier = mitigation.refresh_interval_multiplier()
            if multiplier != 1.0:
                timings = timings.scaled_refresh(multiplier)
        self.timings = timings
        self._nominal_trefi = config.timings.trefi

        banks = config.banks
        self.banks: List[BankState] = [BankState(timings) for _ in range(banks)]
        # Flat mirrors of the hot per-bank fields (open row and command
        # timers).  The scheduler classifies banks from these every processed
        # cycle; reading plain list slots is markedly cheaper than attribute
        # access on the BankState objects.  Every controller code path that
        # mutates a bank must call :meth:`_sync_bank` afterwards -- the push
        # half of the event model: a bank timer change lands in the index
        # here rather than being re-polled -- and the banks are
        # controller-owned, so no other code mutates them.
        self._bank_open_row: List[Optional[int]] = [None] * banks
        self._bank_next_activate = [0] * banks
        self._bank_next_precharge = [0] * banks
        self._bank_next_read = [0] * banks
        self._bank_next_write = [0] * banks
        self.rank = RankState(timings)
        #: Flat queue lists in arrival order: the reference scheduler's
        #: representation.  The fast path leaves issued requests in place as
        #: tombstones (``request.popped``) and compacts lazily; use
        #: :meth:`queued_reads` / :meth:`queued_writes` for live views and
        #: ``read_len`` / ``write_len`` for live sizes.
        self.read_queue: List[MemoryRequest] = []
        self.write_queue: List[MemoryRequest] = []
        self.victim_queue: List[MemoryRequest] = []
        #: Live request counts of the demand queues (the flat lists may
        #: additionally hold tombstones in fast mode).
        self.read_len = 0
        self.write_len = 0
        self._read_dead = 0
        self._write_dead = 0
        self._pending_completions: List[Tuple[int, MemoryRequest]] = []
        #: Earliest cycle at which a pending read's data returns (``NEVER``
        #: when none are in flight).  Public for the event loop, which must
        #: settle lazily accounted core state *before* the tick that fires a
        #: completion (completion flags feed window retirement).
        self.earliest_completion_cycle = _NEVER
        self._next_refresh = timings.trefi
        self._refresh_until = 0
        self.stats = ControllerStats()
        # Per-bank demand-queue occupancy, maintained incrementally: how many
        # queued requests target each bank, and how many of them are row hits
        # (target the bank's currently open row).
        self._read_pending = [0] * banks
        self._read_hits = [0] * banks
        self._write_pending = [0] * banks
        self._write_hits = [0] * banks
        # Indexed bank buckets (see module docstring): per-bank FIFOs,
        # per-(bank, row) arrival buckets with live counts, and the bank
        # classification bitmasks.
        self._read_fifo: List[Deque[MemoryRequest]] = [deque() for _ in range(banks)]
        self._write_fifo: List[Deque[MemoryRequest]] = [deque() for _ in range(banks)]
        self._read_rows: Dict[int, Deque[MemoryRequest]] = {}
        self._write_rows: Dict[int, Deque[MemoryRequest]] = {}
        self._read_row_count: Dict[int, int] = {}
        self._write_row_count: Dict[int, int] = {}
        self._row_stride = config.rows_per_bank
        self._bank_count = banks
        self._tcl = timings.tcl
        self._tfaw = timings.tfaw
        self._read_depth = config.read_queue_depth
        self._write_depth = config.write_queue_depth
        self._write_drain_level = config.write_queue_depth // 2
        # Head-of-index mirrors: per bank, the arrival sequence number of its
        # oldest live request (FIFO head) and of its oldest live row hit
        # (open-row bucket head); ``NEVER`` when none.  The FR-FCFS selection
        # loop reads only these flat integer arrays; the deques behind them
        # are touched once per actual issue.
        self._read_head_seq = [_NEVER] * banks
        self._write_head_seq = [_NEVER] * banks
        self._read_hit_seq = [_NEVER] * banks
        self._write_hit_seq = [_NEVER] * banks
        #: Controller-local arrival counter; FR-FCFS age comparisons use the
        #: ``seq`` it stamps on every accepted request.
        self._seq = 0
        # Event horizon cache: while ``cycle < _quiet_until``, ticking is a
        # proven no-op.  Enqueues *lower* the bound incrementally (each new
        # request folds its bank-local issue bound) instead of discarding it.
        self._quiet_until = 0
        #: Number of requests accepted into the queues; the simulation loop
        #: compares snapshots of this to detect whether cores injected work.
        self.enqueue_count = 0
        #: Core-visible wake events, split per channel: a stalled core can
        #: only resume after the queue it is blocked on pops (these two
        #: counters) or one of its own reads completes
        #: (:meth:`due_completion_cores`), which is what lets the simulation
        #: loop keep stall classifications lazily deferred between exactly
        #: the right events.
        self.read_pops = 0
        self.write_pops = 0
        #: Optional observers for co-simulation with a behavioural chip model:
        #: called as ``hook(bank, row, cycle)`` on every demand activation /
        #: victim refresh the controller issues.
        self.activate_hook = None
        self.victim_refresh_hook = None
        # Batch-kernel mirrors (attached by repro.sim.kernel.BatchKernel
        # when this controller is one lane of a SimulationBatch).
        # ``_k_open`` doubles as the attached flag; while attached, the
        # remaining ``_k_*`` attributes hold this controller's row views of
        # the batch's per-bank arrays and the shared per-simulation arrays
        # (indexed by ``_k_s``).  Every site that mutates indexed scheduling
        # state pushes the new value through under an ``if self._k_open is
        # not None`` guard, so the batch's vectorized scan never re-reads
        # Python-object state; outside a batch each guard costs one
        # attribute check.
        self._k_open = None
        self._k_s = 0
        # Mitigation timer slot (the event-registration API) plus the compat
        # shim: mechanisms that override the legacy ``next_event_cycle`` hook
        # keep being polled on every horizon computation.
        self._mitigation_timer = _NEVER
        self._poll_mitigation = False
        if mitigation is not None:
            register = getattr(mitigation, "register_events", None)
            if register is not None:
                register(MitigationEventPort(self))
            probe = getattr(mitigation, "has_autonomous_timer_poll", None)
            if probe is not None:
                self._poll_mitigation = bool(probe())
            else:
                # Unknown mechanism object: poll defensively if it has the
                # legacy hook at all.
                self._poll_mitigation = hasattr(mitigation, "next_event_cycle")

    def _sync_bank(self, bank_index: int) -> None:
        """Refresh the flat per-bank mirrors after a bank mutation."""
        bank = self.banks[bank_index]
        row = bank.open_row
        self._bank_open_row[bank_index] = row
        self._bank_next_activate[bank_index] = bank.next_activate
        self._bank_next_precharge[bank_index] = bank.next_precharge
        self._bank_next_read[bank_index] = bank.next_read
        self._bank_next_write[bank_index] = bank.next_write
        ko = self._k_open
        if ko is not None:
            ko[bank_index] = -1 if row is None else row
            self._k_nact[bank_index] = bank.next_activate
            self._k_npre[bank_index] = bank.next_precharge
            self._k_nrd[bank_index] = bank.next_read
            self._k_nwr[bank_index] = bank.next_write

    def _sync_bank_precharge(self, bank_index: int) -> None:
        """Mirror sync specialized for a precharge (only the row closes and
        the activate timer moves)."""
        bank = self.banks[bank_index]
        self._bank_open_row[bank_index] = None
        self._bank_next_activate[bank_index] = bank.next_activate
        if self._k_open is not None:
            self._k_open[bank_index] = -1
            self._k_nact[bank_index] = bank.next_activate

    def _sync_bank_column(self, bank_index: int) -> None:
        """Mirror sync specialized for a column access (only the column and
        precharge timers move)."""
        bank = self.banks[bank_index]
        self._bank_next_precharge[bank_index] = bank.next_precharge
        self._bank_next_read[bank_index] = bank.next_read
        self._bank_next_write[bank_index] = bank.next_write
        if self._k_open is not None:
            self._k_npre[bank_index] = bank.next_precharge
            self._k_nrd[bank_index] = bank.next_read
            self._k_nwr[bank_index] = bank.next_write

    def _clear_bank_hits(self, bank_index: int) -> None:
        """Zero both queues' hit accounting for a bank that closed its row."""
        self._read_hits[bank_index] = 0
        self._write_hits[bank_index] = 0
        self._read_hit_seq[bank_index] = _NEVER
        self._write_hit_seq[bank_index] = _NEVER
        if self._k_open is not None:
            self._k_rhits[bank_index] = 0
            self._k_whits[bank_index] = 0
            self._k_rhit[bank_index] = _NEVER
            self._k_whit[bank_index] = _NEVER

    # ------------------------------------------------------------------
    # Enqueue interface (used by cores)
    # ------------------------------------------------------------------
    def can_accept(self, request: MemoryRequest) -> bool:
        """Whether the appropriate request queue has space."""
        if request.is_read:
            return self.read_len < self.config.read_queue_depth
        if request.is_write:
            return self.write_len < self.config.write_queue_depth
        return True

    def enqueue(self, request: MemoryRequest, cycle: int) -> bool:
        """Add a request to the controller; returns ``False`` if the queue is full."""
        bank = request.bank
        row = request.row
        request_type = request.request_type
        if request_type is RequestType.READ:
            if self.read_len >= self._read_depth:
                return False
            request.arrival_cycle = cycle
            self.enqueue_count += 1
            self._seq = seq = self._seq + 1
            request.seq = seq
            self.read_queue.append(request)
            self._read_fifo[bank].append(request)
            key = bank * self._row_stride + row
            bucket = self._read_rows.get(key)
            if bucket is None:
                self._read_rows[key] = bucket = deque()
            bucket.append(request)
            self._read_row_count[key] = self._read_row_count.get(key, 0) + 1
            self.read_len += 1
            pending = self._read_pending[bank]
            self._read_pending[bank] = pending + 1
            if not pending:
                self._read_head_seq[bank] = seq
            new_hits = 0
            if self._bank_open_row[bank] == row:
                new_hits = self._read_hits[bank] + 1
                self._read_hits[bank] = new_hits
                if new_hits == 1:
                    self._read_hit_seq[bank] = seq
            if self._quiet_until > cycle:
                self._fold_enqueue_bound(bank, row, False, cycle)
            if self._k_open is not None:
                # Only the mirrors this enqueue actually changed.  In batch
                # mode ``_quiet_until`` stays parked at 0 (the array is the
                # authoritative quiet bound), so the fold above never ran;
                # re-gate it on the array instead.
                self._k_rpend[bank] = pending + 1
                if not pending:
                    self._k_rhead[bank] = seq
                if new_hits:
                    self._k_rhits[bank] = new_hits
                    if new_hits == 1:
                        self._k_rhit[bank] = seq
                s = self._k_s
                self._k_rlen[s] = self.read_len
                if self._k_quiet[s] > cycle:
                    self._fold_enqueue_bound(bank, row, False, cycle)
        elif request_type is RequestType.WRITE:
            if self.write_len >= self._write_depth:
                return False
            request.arrival_cycle = cycle
            self.enqueue_count += 1
            self._seq = seq = self._seq + 1
            request.seq = seq
            self.write_queue.append(request)
            self._write_fifo[bank].append(request)
            key = bank * self._row_stride + row
            bucket = self._write_rows.get(key)
            if bucket is None:
                self._write_rows[key] = bucket = deque()
            bucket.append(request)
            self._write_row_count[key] = self._write_row_count.get(key, 0) + 1
            self.write_len += 1
            pending = self._write_pending[bank]
            self._write_pending[bank] = pending + 1
            if not pending:
                self._write_head_seq[bank] = seq
            new_hits = 0
            if self._bank_open_row[bank] == row:
                new_hits = self._write_hits[bank] + 1
                self._write_hits[bank] = new_hits
                if new_hits == 1:
                    self._write_hit_seq[bank] = seq
            if self._quiet_until > cycle:
                if self.write_len == self._write_drain_level:
                    # Crossing the drain threshold turns every write bank
                    # into an issue candidate at once; recomputing all their
                    # bounds is not worth it for this rare edge, so force a
                    # full rescan instead.
                    self._quiet_until = 0
                elif not self.read_len or self.write_len >= self._write_drain_level:
                    self._fold_enqueue_bound(bank, row, True, cycle)
                # Otherwise writes are not draining: the new request adds no
                # issue opportunity until a (horizon-tracked) event changes
                # that.
            # Posted write: the core considers it done once buffered.
            request.complete(cycle)
            if self._k_open is not None:
                self._k_wpend[bank] = pending + 1
                if not pending:
                    self._k_whead[bank] = seq
                if new_hits:
                    self._k_whits[bank] = new_hits
                    if new_hits == 1:
                        self._k_whit[bank] = seq
                s = self._k_s
                self._k_wlen[s] = self.write_len
                q = self._k_quiet
                if q[s] > cycle:
                    # Array-side port of the attr quiet logic above (the
                    # attr is parked at 0 while attached, so that branch
                    # never ran).
                    if self.write_len == self._write_drain_level:
                        q[s] = 0
                    elif not self.read_len or self.write_len >= self._write_drain_level:
                        self._fold_enqueue_bound(bank, row, True, cycle)
        else:
            self.victim_queue.append(request)
            request.arrival_cycle = cycle
            self.enqueue_count += 1
            self._quiet_until = 0
            if self._k_open is not None:
                s = self._k_s
                self._k_quiet[s] = 0
                self._k_vict[s] = True
        return True

    def _fold_enqueue_bound(self, bank: int, row: int, is_write: bool, cycle: int) -> None:
        """Lower ``_quiet_until`` by the new request's bank-local issue bound.

        Mirrors the scheduler's per-bank classification for the one affected
        bank.  A new request can only *add* an issue opportunity on its own
        bank (it may also block another bank's precharge or stop a write
        drain, but those only remove opportunities, for which a too-early
        quiet bound merely costs one extra failed scan).
        """
        open_row = self._bank_open_row[bank]
        if open_row == row:
            bound = self._bank_next_write[bank] if is_write else self._bank_next_read[bank]
            bus_ready = self.rank.data_bus_ready_cycle()
            if bus_ready > bound:
                bound = bus_ready
        elif open_row is not None:
            hits = self._write_hits[bank] if is_write else self._read_hits[bank]
            if hits:
                # The bank's open row still has pending hits in this queue;
                # the precharge this request is waiting for is blocked until
                # they drain, which takes an (already horizon-tracked) event.
                return
            bound = self._bank_next_precharge[bank]
        else:
            bound = self._bank_next_activate[bank]
            rank_activate = self.rank.next_activate_cycle()
            if rank_activate > bound:
                bound = rank_activate
        # Floor at the *current* cycle, not the next: a caller that enqueues
        # before ticking the same cycle (the reference flow) must have that
        # tick scan.  Inside the event loop cores enqueue after the tick, so
        # the next tick is at ``cycle + 1`` and scans either way.
        if bound < cycle:
            bound = cycle
        if bound < self._quiet_until:
            self._quiet_until = bound
        if self._k_open is not None:
            q = self._k_quiet
            s = self._k_s
            if bound < q[s]:
                q[s] = bound

    @property
    def outstanding_requests(self) -> int:
        """Number of requests currently queued or in flight."""
        return (
            self.read_len
            + self.write_len
            + len(self.victim_queue)
            + len(self._pending_completions)
        )

    def queued_reads(self) -> List[MemoryRequest]:
        """Live read queue in arrival order (tombstones filtered)."""
        return [request for request in self.read_queue if not request.popped]

    def queued_writes(self) -> List[MemoryRequest]:
        """Live write queue in arrival order (tombstones filtered)."""
        return [request for request in self.write_queue if not request.popped]

    # ------------------------------------------------------------------
    # Main tick
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> Optional[int]:
        """Advance the controller by one DRAM cycle.

        Returns ``None`` when an event occurred this cycle (a completion, a
        refresh command, a mitigation timer, or a command issue); otherwise
        the cycle was quiescent and the return value is the controller's
        event horizon -- the earliest future cycle at which its state can
        change, computed as a byproduct of the failed scheduling scan.  The
        event-driven loop uses this to fast-forward without a second scan;
        cycle-mode callers simply ignore the return value.
        """
        self.stats.cycles = cycle + 1
        if cycle < self._quiet_until:
            # A previous quiescent tick proved nothing can happen before its
            # horizon (enqueues since then have folded their own bounds in).
            return self._quiet_until
        completed = cycle >= self.earliest_completion_cycle and self._complete_due(cycle)
        refreshed = cycle >= self._next_refresh and self._maybe_refresh(cycle)
        fired = self._mitigation_timer <= cycle and self._fire_mitigation_timer(cycle)
        if cycle < self._refresh_until:
            # The rank is busy with an all-bank refresh; nothing can issue
            # before it ends.
            if completed or refreshed or fired:
                return None
            issue_horizon = self._refresh_until
        else:
            issue_horizon = self._schedule(cycle)
            if issue_horizon is None or completed or refreshed or fired:
                self._quiet_until = 0
                return None
        horizon = self._next_refresh
        if issue_horizon < horizon:
            horizon = issue_horizon
        if self.earliest_completion_cycle < horizon:
            horizon = self.earliest_completion_cycle
        if self._mitigation_timer < horizon:
            horizon = self._mitigation_timer
        if self._poll_mitigation:
            timer = self.mitigation.next_event_cycle(cycle)
            if timer is not None and timer < horizon:
                horizon = timer
        floor = cycle + 1
        horizon = horizon if horizon > floor else floor
        self._quiet_until = horizon
        return horizon

    def post_enqueue_horizon(self, cycle: int) -> Optional[int]:
        """Event horizon after cores enqueued requests mid-cycle.

        The enqueue path folds each new request's bank-local bound into the
        quiet cache, so the still-valid bound is simply read back; ``None``
        means the next cycle must be processed (no proven quiet span).
        """
        quiet = self._quiet_until
        return quiet if quiet > cycle + 1 else None

    # ------------------------------------------------------------------
    # Reference tick (the ``step_mode="cycle"`` oracle)
    # ------------------------------------------------------------------
    #
    # The reference path makes every scheduling decision by scanning the
    # request queues and reading the BankState objects directly -- the
    # simple, obviously-correct FR-FCFS formulation this simulator started
    # with.  It deliberately does NOT consult the indexed structures the
    # fast path relies on (per-bank FIFOs and row buckets, bank bitmasks,
    # flat bank mirrors, the quiet-until cache), so the golden regression
    # suite genuinely validates that machinery against an independent
    # implementation instead of comparing it with itself.  Issued commands
    # still run through the shared bookkeeping helpers, which keeps the
    # indexed structures consistent either way (asserted by the consistency
    # unit tests).
    def tick_reference(self, cycle: int) -> None:
        """Advance the controller by one DRAM cycle (reference scheduler)."""
        self.stats.cycles = cycle + 1
        self._complete_due(cycle)
        if cycle >= self._next_refresh:
            self._maybe_refresh(cycle)
        if self._mitigation_timer <= cycle:
            self._fire_mitigation_timer(cycle)
        if cycle < self._refresh_until:
            return  # the rank is busy with an all-bank refresh
        self._schedule_reference(cycle)

    def _schedule_reference(self, cycle: int) -> None:
        # Victim refreshes have priority: they are the mitigation mechanism's
        # correctness-critical work.
        if self.victim_queue and self._issue_victim_refresh_reference(cycle):
            return
        if self._issue_from_queue_reference(self.read_queue, cycle, is_write=False):
            return
        # Drain writes when there is no read work to do or the queue is deep.
        drain_writes = not self.read_len or self.write_len >= self._write_drain_level
        if drain_writes and self._issue_from_queue_reference(
            self.write_queue, cycle, is_write=True
        ):
            return

    def _issue_victim_refresh_reference(self, cycle: int) -> bool:
        for index, request in enumerate(self.victim_queue):
            bank = self.banks[request.bank]
            if bank.open_row is not None:
                if bank.can_precharge(cycle):
                    bank.precharge(cycle)
                    self._sync_bank(request.bank)
                    self._clear_bank_hits(request.bank)
                    return True
                continue
            if bank.can_activate(cycle) and self.rank.can_activate(cycle):
                # A victim refresh is an activate followed by a precharge; the
                # bank is occupied for a full row cycle.
                bank.activate(cycle, request.row)
                self.rank.record_activate(cycle)
                bank.block_until(cycle + self.timings.trc)
                self._sync_bank(request.bank)
                self.stats.mitigation_refreshes += 1
                self.stats.mitigation_busy_cycles += self.timings.trc
                request.complete(cycle + self.timings.trc)
                self.victim_queue.pop(index)
                if self.mitigation is not None:
                    self.mitigation.on_victim_refreshed(request.bank, request.row, cycle)
                if self.victim_refresh_hook is not None:
                    self.victim_refresh_hook(request.bank, request.row, cycle)
                return True
        return False

    def _issue_from_queue_reference(
        self, queue: List[MemoryRequest], cycle: int, is_write: bool
    ) -> bool:
        if not queue:
            return False
        # First ready: a request whose row is already open and can issue its
        # column access now (row hit).
        for index, request in enumerate(queue):
            bank = self.banks[request.bank]
            if (
                bank.open_row == request.row
                and bank.can_column_access(cycle, is_write)
                and self.rank.can_use_data_bus(cycle)
            ):
                self._issue_column_reference(queue, index, cycle, is_write)
                return True
        # Then oldest first: progress the oldest request towards opening its row.
        for request in queue:
            bank_index = request.bank
            bank = self.banks[bank_index]
            if bank.open_row == request.row:
                continue  # waiting for column timing; nothing to issue
            if bank.open_row is not None:
                if bank.can_precharge(cycle) and not self._row_has_pending_hit(
                    bank_index, bank.open_row, queue
                ):
                    bank.precharge(cycle)
                    self._sync_bank(bank_index)
                    self._clear_bank_hits(bank_index)
                    self.stats.row_conflicts += 1
                    return True
                continue
            if bank.can_activate(cycle) and self.rank.can_activate(cycle):
                bank.activate(cycle, request.row)
                self._sync_bank(bank_index)
                self.rank.record_activate(cycle)
                self.stats.demand_activates += 1
                self.stats.demand_busy_cycles += self.timings.trc
                self._recount_hits(bank_index, request.row)
                self._notify_activation(bank_index, request.row, cycle)
                if self.activate_hook is not None:
                    self.activate_hook(bank_index, request.row, cycle)
                return True
        return False

    # ------------------------------------------------------------------
    # Refresh handling
    # ------------------------------------------------------------------
    def _maybe_refresh(self, cycle: int) -> bool:
        """Issue the periodic all-bank refresh (caller checks ``_next_refresh``)."""
        timings = self.timings
        # Close all banks and block the rank for tRFC.
        start = cycle
        for bank in self.banks:
            start = max(start, bank.next_precharge if bank.open_row is not None else cycle)
        end = start + timings.trfc
        for bank in self.banks:
            bank.block_until(end)
        # Every bank is closed now; no queued request is a row hit any more.
        for bank_index in range(self.config.banks):
            self._sync_bank(bank_index)
        for bank_index in range(self.config.banks):
            self._read_hits[bank_index] = 0
            self._write_hits[bank_index] = 0
            self._read_hit_seq[bank_index] = _NEVER
            self._write_hit_seq[bank_index] = _NEVER
        self._refresh_until = end
        self._next_refresh += timings.trefi
        self.stats.refresh_commands += 1
        self.stats.refresh_busy_cycles += timings.trfc
        if self._k_open is not None:
            # The per-bank sync above already pushed the bank timers; zero
            # the whole hit rows and advance the refresh scalars in one go.
            self._k_rhits[:] = 0
            self._k_whits[:] = 0
            self._k_rhit[:] = _NEVER
            self._k_whit[:] = _NEVER
            s = self._k_s
            self._k_nref[s] = self._next_refresh
            self._k_runtil[s] = end
        if self.mitigation is not None:
            for bank, row in self.mitigation.on_refresh(cycle):
                self._enqueue_victim_refresh(bank, row, cycle)
        return True

    # ------------------------------------------------------------------
    # Mitigation timers (the event-registration API)
    # ------------------------------------------------------------------
    def _fire_mitigation_timer(self, cycle: int) -> bool:
        """Dispatch a due autonomous mitigation timer (both step modes)."""
        self._mitigation_timer = _NEVER
        if self._k_open is not None:
            self._k_timer[self._k_s] = _NEVER
        if self.mitigation is not None:
            on_timer = getattr(self.mitigation, "on_timer", None)
            if on_timer is not None:
                # The mechanism may re-arm its timer through the port from
                # inside the dispatch.
                for bank, row in on_timer(cycle):
                    self._enqueue_victim_refresh(bank, row, cycle)
        return True

    # ------------------------------------------------------------------
    # Scheduling (FR-FCFS over the indexed bank buckets)
    # ------------------------------------------------------------------
    #
    # The scheduling helpers double as the horizon computation: each returns
    # ``None`` when it issued a command this cycle, and otherwise the
    # earliest future cycle at which any of its queued requests could have a
    # command issued.  Every bound uses only timers that move when commands
    # issue (bank timers, rank tRRD/tFAW, data-bus occupancy) plus queue
    # contents that only change at events, so a failed scan's horizon stays
    # valid until the next event.
    def _schedule(self, cycle: int) -> Optional[int]:
        horizon = _NEVER
        rank = self.rank
        rank_activate = rank.next_activate
        recent = rank.recent_activates
        if len(recent) >= 4:
            faw_bound = recent[0] + self._tfaw
            if faw_bound > rank_activate:
                rank_activate = faw_bound
        # Victim refreshes have priority: they are the mitigation mechanism's
        # correctness-critical work.
        if self.victim_queue:
            victim_horizon = self._issue_victim_refresh(cycle, rank_activate)
            if victim_horizon is None:
                return None
            if victim_horizon < horizon:
                horizon = victim_horizon
        read_horizon = self._issue_demand(cycle, False, rank_activate)
        if read_horizon is None:
            return None
        if read_horizon < horizon:
            horizon = read_horizon
        # Drain writes when there is no read work to do or the queue is deep.
        drain_writes = not self.read_len or self.write_len >= self._write_drain_level
        if drain_writes:
            write_horizon = self._issue_demand(cycle, True, rank_activate)
            if write_horizon is None:
                return None
            if write_horizon < horizon:
                horizon = write_horizon
        return horizon

    def _issue_victim_refresh(self, cycle: int, rank_activate: int) -> Optional[int]:
        horizon = _NEVER
        for index, request in enumerate(self.victim_queue):
            bank = self.banks[request.bank]
            if bank.open_row is not None:
                if bank.can_precharge(cycle):
                    bank.precharge(cycle)
                    self._sync_bank_precharge(request.bank)
                    self._clear_bank_hits(request.bank)
                    return None
                if bank.next_precharge < horizon:
                    horizon = bank.next_precharge
                continue
            if cycle >= bank.next_activate and self.rank.can_activate(cycle):
                # A victim refresh is an activate followed by a precharge; the
                # bank is occupied for a full row cycle.
                bank.activate(cycle, request.row)
                self.rank.record_activate(cycle)
                bank.block_until(cycle + self.timings.trc)
                self._sync_bank(request.bank)
                self.stats.mitigation_refreshes += 1
                self.stats.mitigation_busy_cycles += self.timings.trc
                request.complete(cycle + self.timings.trc)
                self.victim_queue.pop(index)
                if self.mitigation is not None:
                    self.mitigation.on_victim_refreshed(request.bank, request.row, cycle)
                if self.victim_refresh_hook is not None:
                    self.victim_refresh_hook(request.bank, request.row, cycle)
                return None
            bound = bank.next_activate
            if rank_activate > bound:
                bound = rank_activate
            if bound < horizon:
                horizon = bound
        return horizon

    def _issue_demand(
        self, cycle: int, is_write: bool, rank_activate: int
    ) -> Optional[int]:
        """Issue the FR-FCFS choice of one demand queue, or return its horizon.

        One fused pass over the banks with queued work: classification
        (hit / conflict / closed) and the FR-FCFS age tie-break both read
        only flat per-bank integer arrays (command-timer mirrors and the
        head-of-index sequence numbers); the deques behind the index are
        touched exactly once, for the single issued command.
        """
        if is_write:
            if not self.write_len:
                return _NEVER
            pending = self._write_pending
            hits = self._write_hits
            column_timers = self._bank_next_write
            head_seqs = self._write_head_seq
            hit_seqs = self._write_hit_seq
        else:
            if not self.read_len:
                return _NEVER
            pending = self._read_pending
            hits = self._read_hits
            column_timers = self._bank_next_read
            head_seqs = self._read_head_seq
            hit_seqs = self._read_hit_seq
        open_rows = self._bank_open_row
        activate_timers = self._bank_next_activate
        precharge_timers = self._bank_next_precharge
        bus_ready = self.rank.data_bus_free - self._tcl
        horizon = _NEVER
        best_hit_seq = _NEVER
        best_hit_bank = -1
        best_old_seq = _NEVER
        best_old_bank = -1
        best_precharge = False
        rank_ok: Optional[bool] = None
        for bank_index, pending_here in enumerate(pending):
            if not pending_here:
                continue
            if hits[bank_index]:
                # Hit bank: its oldest hit is a candidate once the column
                # timer and the shared data bus allow; its open row must not
                # be precharged either way.
                ready = column_timers[bank_index]
                if bus_ready > ready:
                    ready = bus_ready
                if cycle >= ready:
                    seq = hit_seqs[bank_index]
                    if seq < best_hit_seq:
                        best_hit_seq = seq
                        best_hit_bank = bank_index
                elif ready < horizon:
                    horizon = ready
                continue
            if open_rows[bank_index] is not None:
                # Conflict bank (open row, no hits in this queue): precharge
                # when legal; every queued request is a candidate, so the
                # bank's candidate is its FIFO head.
                bound = precharge_timers[bank_index]
                if cycle >= bound:
                    seq = head_seqs[bank_index]
                    if seq < best_old_seq:
                        best_old_seq = seq
                        best_old_bank = bank_index
                        best_precharge = True
                elif bound < horizon:
                    horizon = bound
                continue
            # Closed bank: activate the oldest request's row when bank and
            # rank allow.
            bound = activate_timers[bank_index]
            if cycle >= bound:
                if rank_ok is None:
                    rank_ok = self.rank.can_activate(cycle)
                if rank_ok:
                    seq = head_seqs[bank_index]
                    if seq < best_old_seq:
                        best_old_seq = seq
                        best_old_bank = bank_index
                        best_precharge = False
                    continue
                bound = rank_activate
            elif rank_activate > bound:
                bound = rank_activate
            if bound < horizon:
                horizon = bound
        # First ready: the oldest hit among hit-ready banks.
        if best_hit_bank >= 0:
            self._issue_column_fast(best_hit_bank, cycle, is_write)
            return None
        # Then oldest first: the oldest request among issuable banks.
        if best_old_bank >= 0:
            if best_precharge:
                self._issue_precharge(best_old_bank, cycle)
            else:
                self._issue_activate(best_old_bank, cycle, is_write)
            return None
        return horizon

    def _issue_precharge(self, bank_index: int, cycle: int) -> None:
        """Close ``bank_index``'s row for its oldest conflicting request.

        Shared issue tail of :meth:`_issue_demand` and the batch kernel's
        vectorized selection.  The issuing queue had no hits on the bank
        (that is what allowed the precharge), but the other queue may have;
        the bank is closed now, so neither has any.
        """
        self.banks[bank_index].precharge(cycle)
        self._sync_bank_precharge(bank_index)
        self._clear_bank_hits(bank_index)
        self.stats.row_conflicts += 1

    def _issue_activate(self, bank_index: int, cycle: int, is_write: bool) -> None:
        """Activate the row of ``bank_index``'s oldest queued request.

        Shared issue tail of :meth:`_issue_demand` and the batch kernel's
        vectorized selection; dispatches the mitigation's ``on_activate``
        hook and any co-simulation observer.
        """
        fifo = self._write_fifo[bank_index] if is_write else self._read_fifo[bank_index]
        head = fifo[0]
        while head.popped:
            fifo.popleft()
            head = fifo[0]
        row = head.row
        self.banks[bank_index].activate(cycle, row)
        self._sync_bank(bank_index)
        self.rank.record_activate(cycle)
        self.stats.demand_activates += 1
        self.stats.demand_busy_cycles += self.timings.trc
        self._recount_hits(bank_index, row)
        self._notify_activation(bank_index, row, cycle)
        if self.activate_hook is not None:
            self.activate_hook(bank_index, row, cycle)

    def _recount_hits(self, bank_index: int, open_row: int) -> None:
        """Refresh the per-bank hit accounting after a bank opened ``open_row``.

        The live per-(bank, row) bucket counts make this O(1) -- no queue
        scans; the oldest hit is the bucket head (cleaned of tombstones
        here so the selection loop can trust the mirrored sequence number).
        """
        key = bank_index * self._row_stride + open_row
        count = self._read_row_count.get(key, 0)
        self._read_hits[bank_index] = count
        if count:
            bucket = self._read_rows[key]
            head = bucket[0]
            while head.popped:
                bucket.popleft()
                head = bucket[0]
            self._read_hit_seq[bank_index] = head.seq
        else:
            self._read_hit_seq[bank_index] = _NEVER
        count = self._write_row_count.get(key, 0)
        self._write_hits[bank_index] = count
        if count:
            bucket = self._write_rows[key]
            head = bucket[0]
            while head.popped:
                bucket.popleft()
                head = bucket[0]
            self._write_hit_seq[bank_index] = head.seq
        else:
            self._write_hit_seq[bank_index] = _NEVER
        if self._k_open is not None:
            self._k_rhits[bank_index] = self._read_hits[bank_index]
            self._k_rhit[bank_index] = self._read_hit_seq[bank_index]
            self._k_whits[bank_index] = self._write_hits[bank_index]
            self._k_whit[bank_index] = self._write_hit_seq[bank_index]

    def _row_has_pending_hit(
        self, bank_index: int, open_row: int, queue: List[MemoryRequest]
    ) -> bool:
        """Whether any queued request still targets the bank's open row.

        Reference-scheduler helper: scans the flat queue (tombstones never
        arise in reference mode, which pops the list eagerly).
        """
        for request in queue:
            if request.bank == bank_index and request.row == open_row:
                return True
        return False

    # ------------------------------------------------------------------
    # Column issue (shared bookkeeping of both schedulers)
    # ------------------------------------------------------------------
    def _account_pop(self, request: MemoryRequest, is_write: bool) -> None:
        """Remove an issued request from the live accounting structures.

        Shared by both schedulers.  The head-of-index sequence mirrors are
        *not* advanced here: the fast path advances them from the deques it
        already holds (:meth:`_issue_column_fast`), and the reference path
        never reads them (:meth:`_recount_hits` re-derives them on the next
        activate either way).
        """
        request.popped = True
        bank = request.bank
        key = bank * self._row_stride + request.row
        if is_write:
            self.write_len -= 1
            self._write_pending[bank] -= 1
            self._write_hits[bank] -= 1
            remaining = self._write_row_count[key] - 1
            if remaining:
                self._write_row_count[key] = remaining
            else:
                # Prune the emptied bucket (and any tombstones it retains),
                # bounding the row-bucket dicts by live queue contents.
                del self._write_row_count[key]
                del self._write_rows[key]
            if self._k_open is not None:
                self._k_wlen[self._k_s] = self.write_len
                self._k_wpend[bank] = self._write_pending[bank]
                self._k_whits[bank] = self._write_hits[bank]
        else:
            self.read_len -= 1
            self._read_pending[bank] -= 1
            self._read_hits[bank] -= 1
            remaining = self._read_row_count[key] - 1
            if remaining:
                self._read_row_count[key] = remaining
            else:
                del self._read_row_count[key]
                del self._read_rows[key]
            if self._k_open is not None:
                self._k_rlen[self._k_s] = self.read_len
                self._k_rpend[bank] = self._read_pending[bank]
                self._k_rhits[bank] = self._read_hits[bank]

    def _perform_column(self, request: MemoryRequest, cycle: int, is_write: bool) -> None:
        """Issue the column access for a dequeued row-hit request."""
        bank = self.banks[request.bank]
        data_done = bank.column_access(cycle, is_write)
        self._sync_bank_column(request.bank)
        self.rank.occupy_data_bus(cycle)
        self.stats.row_hits += 1
        self.stats.demand_busy_cycles += self.timings.burst_cycles
        if is_write:
            self.write_pops += 1
            self.stats.writes_serviced += 1
            return
        self.read_pops += 1
        self.stats.reads_serviced += 1
        self._pending_completions.append((data_done, request))
        if data_done < self.earliest_completion_cycle:
            self.earliest_completion_cycle = data_done
            if self._k_open is not None:
                self._k_comp[self._k_s] = data_done

    def _issue_column_fast(self, bank: int, cycle: int, is_write: bool) -> None:
        """Fast-path column issue of ``bank``'s oldest row hit.

        Dequeues the open-row bucket head, advances the head-of-index
        sequence mirrors, tombstones the flat list entry (compacting once
        enough accumulate), and performs the shared physical issue.
        """
        if is_write:
            rows = self._write_rows
            fifo = self._write_fifo[bank]
            hits = self._write_hits
            head_seqs = self._write_head_seq
            hit_seqs = self._write_hit_seq
            pending = self._write_pending
        else:
            rows = self._read_rows
            fifo = self._read_fifo[bank]
            hits = self._read_hits
            head_seqs = self._read_head_seq
            hit_seqs = self._read_hit_seq
            pending = self._read_pending
        bucket = rows[bank * self._row_stride + self._bank_open_row[bank]]
        request = bucket[0]
        while request.popped:
            bucket.popleft()
            request = bucket[0]
        bucket.popleft()
        self._account_pop(request, is_write)
        # Advance the oldest-hit mirror to the next live hit, if any.
        if hits[bank]:
            head = bucket[0]
            while head.popped:
                bucket.popleft()
                head = bucket[0]
            hit_seqs[bank] = head.seq
        else:
            hit_seqs[bank] = _NEVER
        # Advance the oldest-request mirror if the FIFO head was issued.
        if pending[bank]:
            if head_seqs[bank] == request.seq:
                head = fifo[0]
                while head.popped:
                    fifo.popleft()
                    head = fifo[0]
                head_seqs[bank] = head.seq
        else:
            head_seqs[bank] = _NEVER
        if self._k_open is not None:
            if is_write:
                self._k_whit[bank] = hit_seqs[bank]
                self._k_whead[bank] = head_seqs[bank]
            else:
                self._k_rhit[bank] = hit_seqs[bank]
                self._k_rhead[bank] = head_seqs[bank]
        if is_write:
            self._write_dead += 1
            if (
                self._write_dead >= _COMPACT_MIN_DEAD
                and self._write_dead * 2 >= len(self.write_queue)
            ):
                self.write_queue[:] = [r for r in self.write_queue if not r.popped]
                self._write_dead = 0
        else:
            self._read_dead += 1
            if (
                self._read_dead >= _COMPACT_MIN_DEAD
                and self._read_dead * 2 >= len(self.read_queue)
            ):
                self.read_queue[:] = [r for r in self.read_queue if not r.popped]
                self._read_dead = 0
        self._perform_column(request, cycle, is_write)

    def _issue_column_reference(
        self, queue: List[MemoryRequest], index: int, cycle: int, is_write: bool
    ) -> None:
        """Reference-path column issue: eager flat-list pop, shared accounting."""
        request = queue.pop(index)
        self._account_pop(request, is_write)
        self._perform_column(request, cycle, is_write)

    def due_completion_cores(self, cycle: int) -> List[int]:
        """Core ids whose pending read data returns at or before ``cycle``.

        The event loop settles exactly these cores' deferred stall time
        before the tick that fires the completions: only their window flags
        are about to change, so only their lazily accounted retirement needs
        the pre-completion replay barrier.
        """
        return [
            request.core_id
            for done_cycle, request in self._pending_completions
            if done_cycle <= cycle
        ]

    def _complete_due(self, cycle: int) -> bool:
        if cycle < self.earliest_completion_cycle:
            return False
        still_pending = []
        earliest = _NEVER
        for done_cycle, request in self._pending_completions:
            if done_cycle <= cycle:
                request.complete(cycle)
                self.stats.read_latency_total += cycle - request.arrival_cycle
                self.stats.read_latency_samples += 1
            else:
                still_pending.append((done_cycle, request))
                if done_cycle < earliest:
                    earliest = done_cycle
        completed = len(still_pending) < len(self._pending_completions)
        self._pending_completions = still_pending
        self.earliest_completion_cycle = earliest
        if self._k_open is not None:
            self._k_comp[self._k_s] = earliest
        return completed

    # ------------------------------------------------------------------
    # Event horizon
    # ------------------------------------------------------------------
    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which controller state can change.

        Ticking the controller at any cycle in ``(cycle, horizon)`` is
        guaranteed to complete no request, issue no command, fire no timer
        and trigger no refresh, so an event-driven loop can jump directly to
        the horizon.  This is the *pure* (non-mutating) horizon oracle; the
        simulation loop itself consumes the equivalent value a quiescent
        :meth:`tick` returns as a byproduct of its failed scheduling scan,
        and ``tests/sim/test_event_horizon.py`` pins the two implementations
        to each other.  The computation folds in, exactly:

        * the periodic refresh schedule (``_next_refresh``, which already
          reflects a mitigation's increased refresh rate),
        * pending read-data completions,
        * per-bank issue opportunities (bank timers, rank tRRD/tFAW, and
          data-bus occupancy, classified from the indexed bank buckets for
          every bank with queued demand or victim work), and
        * any mitigation timer -- a registered autonomous timer
          (:class:`MitigationEventPort`) or, for legacy mechanisms, the
          polled
          :meth:`repro.mitigations.base.MitigationMechanism.next_event_cycle`
          hook.
        """
        floor = cycle + 1
        horizon = self._next_refresh
        if self.earliest_completion_cycle < horizon:
            horizon = self.earliest_completion_cycle
        if self._mitigation_timer < horizon:
            horizon = self._mitigation_timer
        if self._poll_mitigation:
            timer = self.mitigation.next_event_cycle(cycle)
            if timer is not None and timer < horizon:
                horizon = timer
        if horizon <= floor:
            return floor
        issue = self._next_issue_cycle(floor)
        if issue < horizon:
            horizon = issue
        return horizon if horizon > floor else floor

    def _next_issue_cycle(self, floor: int) -> int:
        """Earliest cycle (at or after ``floor``) at which any queued request
        could have a command issued for it.

        Mirrors :meth:`_schedule` case by case; every per-bank bound uses
        only timers that move when commands issue, so the bound stays valid
        until the next event.  Scheduling is suspended while an all-bank
        refresh occupies the rank, so no issue can predate ``_refresh_until``.
        """
        base = self._refresh_until if self._refresh_until > floor else floor
        horizon = self._next_refresh  # an issue opportunity always recurs by then
        banks = self.banks
        rank = self.rank
        rank_activate = rank.next_activate
        recent = rank.recent_activates
        if len(recent) >= 4:
            faw_bound = recent[0] + self._tfaw
            if faw_bound > rank_activate:
                rank_activate = faw_bound
        for request in self.victim_queue:
            bank = banks[request.bank]
            if bank.open_row is not None:
                ready = bank.next_precharge
            else:
                ready = bank.next_activate
                if rank_activate > ready:
                    ready = rank_activate
            if ready < horizon:
                if ready <= base:
                    return base
                horizon = ready
        horizon = self._demand_horizon(False, base, horizon, rank_activate)
        if horizon <= base:
            return base
        drain_writes = not self.read_len or self.write_len >= self._write_drain_level
        if drain_writes:
            horizon = self._demand_horizon(True, base, horizon, rank_activate)
        return horizon if horizon > base else base

    def _demand_horizon(
        self, is_write: bool, base: int, horizon: int, rank_activate: int
    ) -> int:
        """Fold one demand queue's earliest issue opportunity into ``horizon``.

        Per-bank classification over the index -- identical bounds to the
        ones :meth:`_issue_demand` derives from a failed scan.
        """
        if is_write:
            if not self.write_len:
                return horizon
            pending = self._write_pending
            hits = self._write_hits
            column_timers = self._bank_next_write
        else:
            if not self.read_len:
                return horizon
            pending = self._read_pending
            hits = self._read_hits
            column_timers = self._bank_next_read
        open_rows = self._bank_open_row
        activate_timers = self._bank_next_activate
        precharge_timers = self._bank_next_precharge
        bus_ready = self.rank.data_bus_free - self._tcl
        for bank_index, pending_here in enumerate(pending):
            if not pending_here:
                continue
            if hits[bank_index]:
                ready = column_timers[bank_index]
                if bus_ready > ready:
                    ready = bus_ready
            elif open_rows[bank_index] is not None:
                ready = precharge_timers[bank_index]
            else:
                ready = activate_timers[bank_index]
                if rank_activate > ready:
                    ready = rank_activate
            if ready < horizon:
                if ready <= base:
                    return base
                horizon = ready
        return horizon

    # ------------------------------------------------------------------
    # Mitigation integration
    # ------------------------------------------------------------------
    def _notify_activation(self, bank: int, row: int, cycle: int) -> None:
        if self.mitigation is None:
            return
        for victim_bank, victim_row in self.mitigation.on_activate(bank, row, cycle):
            self._enqueue_victim_refresh(victim_bank, victim_row, cycle)

    def _enqueue_victim_refresh(self, bank: int, row: int, cycle: int) -> None:
        if not 0 <= row < self.config.rows_per_bank:
            return
        request = MemoryRequest(
            request_type=RequestType.VICTIM_REFRESH,
            bank=bank,
            row=row,
            core_id=-1,
            arrival_cycle=cycle,
        )
        self.victim_queue.append(request)
        if self._k_open is not None:
            self._k_vict[self._k_s] = True

    # ------------------------------------------------------------------
    # Bandwidth accounting
    # ------------------------------------------------------------------
    def extra_refresh_busy_cycles(self) -> float:
        """Refresh bank-time beyond what the nominal refresh rate would use.

        Non-zero only when a mitigation mechanism increases the refresh rate.
        """
        if self.timings.trefi >= self._nominal_trefi:
            return 0.0
        nominal_refreshes = self.stats.cycles / self._nominal_trefi
        nominal_busy = nominal_refreshes * self.timings.trfc
        return max(0.0, self.stats.refresh_busy_cycles - nominal_busy)

    def mitigation_busy_cycles(self) -> float:
        """Total DRAM bank-time consumed by the mitigation mechanism."""
        return self.stats.mitigation_busy_cycles + self.extra_refresh_busy_cycles()
