"""FR-FCFS memory controller with refresh and RowHammer-mitigation hooks.

The controller services read/write requests from the cores over a single
channel and rank (Table 6), scheduling with the FR-FCFS policy: row-buffer
hits first, then oldest-first.  It issues all-bank refresh every tREFI and
exposes two hooks to a RowHammer mitigation mechanism:

* ``on_activate(bank, row, cycle)`` is called for every demand activation and
  returns rows the mechanism wants refreshed (performed as internal
  victim-refresh requests that occupy the bank for a full row cycle), and
* ``on_refresh(cycle)`` is called at every periodic refresh command (used by
  mechanisms such as ProHIT that piggyback victim refreshes on refresh).

The controller also accounts separately for the DRAM bank-time consumed by
demand traffic, by nominal refresh, and by the mitigation mechanism, which
is what the bandwidth-overhead metric of Figure 10a reports.

Event horizon
-------------
All controller state changes happen at *events*: a command issue, a read
completion, or a periodic refresh.  :meth:`MemoryController.next_event_cycle`
returns the earliest future cycle at which any of those could occur --
folding in bank and rank timers for every queued request, pending read
completions, the refresh schedule (including a mitigation's increased
refresh rate), and any autonomous mitigation timer -- so the event-driven
simulation loop can jump the clock straight to it.  Between two events,
ticking the controller is a no-op by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.sim.bank import BankState, RankState
from repro.sim.config import SystemConfig
from repro.sim.core import NEVER as _NEVER
from repro.sim.requests import MemoryRequest, RequestType


@dataclass
class ControllerStats:
    """Cumulative controller statistics."""

    cycles: int = 0
    reads_serviced: int = 0
    writes_serviced: int = 0
    demand_activates: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    refresh_commands: int = 0
    refresh_busy_cycles: int = 0
    mitigation_refreshes: int = 0
    mitigation_busy_cycles: int = 0
    demand_busy_cycles: int = 0
    read_latency_total: int = 0
    read_latency_samples: int = 0

    @property
    def average_read_latency(self) -> float:
        """Mean read latency in DRAM cycles."""
        if self.read_latency_samples == 0:
            return 0.0
        return self.read_latency_total / self.read_latency_samples


class MemoryController:
    """Single-channel FR-FCFS memory controller.

    Parameters
    ----------
    config:
        System configuration (bank count, queue depths, timings).
    mitigation:
        Optional RowHammer mitigation mechanism implementing the
        :class:`repro.mitigations.base.MitigationMechanism` interface.  The
        mechanism may also override the refresh interval (increased refresh
        rate) through its ``refresh_interval_multiplier``.
    """

    def __init__(self, config: SystemConfig, mitigation=None) -> None:
        self.config = config
        self.mitigation = mitigation
        timings = config.timings
        if mitigation is not None:
            multiplier = mitigation.refresh_interval_multiplier()
            if multiplier != 1.0:
                timings = timings.scaled_refresh(multiplier)
        self.timings = timings
        self._nominal_trefi = config.timings.trefi

        self.banks: List[BankState] = [BankState(timings) for _ in range(config.banks)]
        # Flat mirrors of the hot per-bank fields (open row and command
        # timers).  The scheduler's per-bank classification loop runs every
        # processed cycle; reading plain list slots is markedly cheaper than
        # attribute access on the BankState objects.  Every controller code
        # path that mutates a bank must call :meth:`_sync_bank` afterwards;
        # the banks are controller-owned, so no other code mutates them.
        self._bank_open_row: List[Optional[int]] = [None] * config.banks
        self._bank_next_activate = [0] * config.banks
        self._bank_next_precharge = [0] * config.banks
        self._bank_next_read = [0] * config.banks
        self._bank_next_write = [0] * config.banks
        self.rank = RankState(timings)
        self.read_queue: List[MemoryRequest] = []
        self.write_queue: List[MemoryRequest] = []
        self.victim_queue: List[MemoryRequest] = []
        self._pending_completions: List[Tuple[int, MemoryRequest]] = []
        #: Earliest cycle at which a pending read's data returns (``_NEVER``
        #: when none are in flight).  Public for the event loop, which must
        #: settle lazily accounted core state *before* the tick that fires a
        #: completion (completion flags feed window retirement).
        self.earliest_completion_cycle = _NEVER
        self._next_refresh = timings.trefi
        self._refresh_until = 0
        self.stats = ControllerStats()
        # Per-bank demand-queue occupancy, maintained incrementally so the
        # scheduler classifies banks in O(banks) instead of scanning the
        # queues: how many queued requests target each bank, and how many of
        # them are row hits (target the bank's currently open row).  Hits are
        # recounted only when a bank's open row changes (an event).
        self._read_pending = [0] * config.banks
        self._read_hits = [0] * config.banks
        self._write_pending = [0] * config.banks
        self._write_hits = [0] * config.banks
        # Event horizon cache: while ``cycle < _quiet_until`` and no request
        # has been enqueued since it was computed, ticking is a proven no-op.
        self._quiet_until = 0
        #: Number of requests accepted into the queues; the simulation loop
        #: compares snapshots of this to detect whether cores injected work.
        self.enqueue_count = 0
        #: Number of core-visible wake events (read-data completions and
        #: demand-queue pops).  A stalled core can only resume after one of
        #: these, which is what lets the simulation loop cache stall
        #: classifications between events.
        self.wake_count = 0
        #: Optional observers for co-simulation with a behavioural chip model:
        #: called as ``hook(bank, row, cycle)`` on every demand activation /
        #: victim refresh the controller issues.
        self.activate_hook = None
        self.victim_refresh_hook = None

    def _sync_bank(self, bank_index: int) -> None:
        """Refresh the flat per-bank mirrors after a bank mutation."""
        bank = self.banks[bank_index]
        self._bank_open_row[bank_index] = bank.open_row
        self._bank_next_activate[bank_index] = bank.next_activate
        self._bank_next_precharge[bank_index] = bank.next_precharge
        self._bank_next_read[bank_index] = bank.next_read
        self._bank_next_write[bank_index] = bank.next_write

    # ------------------------------------------------------------------
    # Enqueue interface (used by cores)
    # ------------------------------------------------------------------
    def can_accept(self, request: MemoryRequest) -> bool:
        """Whether the appropriate request queue has space."""
        if request.is_read:
            return len(self.read_queue) < self.config.read_queue_depth
        if request.is_write:
            return len(self.write_queue) < self.config.write_queue_depth
        return True

    def enqueue(self, request: MemoryRequest, cycle: int) -> bool:
        """Add a request to the controller; returns ``False`` if the queue is full."""
        if not self.can_accept(request):
            return False
        request.arrival_cycle = cycle
        self.enqueue_count += 1
        self._quiet_until = 0
        if request.is_read:
            self.read_queue.append(request)
            self._read_pending[request.bank] += 1
            if self._bank_open_row[request.bank] == request.row:
                self._read_hits[request.bank] += 1
        elif request.is_write:
            self.write_queue.append(request)
            self._write_pending[request.bank] += 1
            if self._bank_open_row[request.bank] == request.row:
                self._write_hits[request.bank] += 1
            # Posted write: the core considers it done once buffered.
            request.complete(cycle)
        else:
            self.victim_queue.append(request)
        return True

    @property
    def outstanding_requests(self) -> int:
        """Number of requests currently queued or in flight."""
        return (
            len(self.read_queue)
            + len(self.write_queue)
            + len(self.victim_queue)
            + len(self._pending_completions)
        )

    # ------------------------------------------------------------------
    # Main tick
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> Optional[int]:
        """Advance the controller by one DRAM cycle.

        Returns ``None`` when an event occurred this cycle (a completion, a
        refresh command, or a command issue); otherwise the cycle was
        quiescent and the return value is the controller's event horizon --
        the earliest future cycle at which its state can change, computed as
        a byproduct of the failed scheduling scan.  The event-driven loop
        uses this to fast-forward without a second queue scan; cycle-mode
        callers simply ignore the return value.
        """
        self.stats.cycles = cycle + 1
        if cycle < self._quiet_until:
            # A previous quiescent tick proved nothing can happen before its
            # horizon, and no request has been enqueued since.
            return self._quiet_until
        completed = cycle >= self.earliest_completion_cycle and self._complete_due(cycle)
        refreshed = cycle >= self._next_refresh and self._maybe_refresh(cycle)
        if cycle < self._refresh_until:
            # The rank is busy with an all-bank refresh; nothing can issue
            # before it ends.
            if completed or refreshed:
                return None
            issue_horizon = self._refresh_until
        else:
            issue_horizon = self._schedule(cycle)
            if issue_horizon is None or completed or refreshed:
                self._quiet_until = 0
                return None
        horizon = self._next_refresh
        if issue_horizon < horizon:
            horizon = issue_horizon
        if self.earliest_completion_cycle < horizon:
            horizon = self.earliest_completion_cycle
        if self.mitigation is not None:
            timer = self.mitigation.next_event_cycle(cycle)
            if timer is not None and timer < horizon:
                horizon = timer
        floor = cycle + 1
        horizon = horizon if horizon > floor else floor
        self._quiet_until = horizon
        return horizon

    # ------------------------------------------------------------------
    # Reference tick (the ``step_mode="cycle"`` oracle)
    # ------------------------------------------------------------------
    #
    # The reference path makes every scheduling decision by scanning the
    # request queues and reading the BankState objects directly -- the
    # simple, obviously-correct FR-FCFS formulation this simulator started
    # with.  It deliberately does NOT consult the incremental structures the
    # fast path relies on (per-bank pending/hit counters, flat bank mirrors,
    # the quiet-until cache), so the golden regression suite genuinely
    # validates that machinery against an independent implementation instead
    # of comparing it with itself.  Issued commands still run through the
    # shared bookkeeping helpers, which keeps the incremental structures
    # consistent either way (asserted by the consistency unit tests).
    def tick_reference(self, cycle: int) -> None:
        """Advance the controller by one DRAM cycle (reference scheduler)."""
        self.stats.cycles = cycle + 1
        self._complete_due(cycle)
        if cycle >= self._next_refresh:
            self._maybe_refresh(cycle)
        if cycle < self._refresh_until:
            return  # the rank is busy with an all-bank refresh
        self._schedule_reference(cycle)

    def _schedule_reference(self, cycle: int) -> None:
        # Victim refreshes have priority: they are the mitigation mechanism's
        # correctness-critical work.
        if self.victim_queue and self._issue_victim_refresh_reference(cycle):
            return
        if self._issue_from_queue_reference(self.read_queue, cycle, is_write=False):
            return
        # Drain writes when there is no read work to do or the queue is deep.
        drain_writes = (
            not self.read_queue
            or len(self.write_queue) >= self.config.write_queue_depth // 2
        )
        if drain_writes and self._issue_from_queue_reference(
            self.write_queue, cycle, is_write=True
        ):
            return

    def _issue_victim_refresh_reference(self, cycle: int) -> bool:
        for index, request in enumerate(self.victim_queue):
            bank = self.banks[request.bank]
            if bank.open_row is not None:
                if bank.can_precharge(cycle):
                    bank.precharge(cycle)
                    self._sync_bank(request.bank)
                    self._read_hits[request.bank] = 0
                    self._write_hits[request.bank] = 0
                    return True
                continue
            if bank.can_activate(cycle) and self.rank.can_activate(cycle):
                # A victim refresh is an activate followed by a precharge; the
                # bank is occupied for a full row cycle.
                bank.activate(cycle, request.row)
                self.rank.record_activate(cycle)
                bank.block_until(cycle + self.timings.trc)
                self._sync_bank(request.bank)
                self.stats.mitigation_refreshes += 1
                self.stats.mitigation_busy_cycles += self.timings.trc
                request.complete(cycle + self.timings.trc)
                self.victim_queue.pop(index)
                if self.mitigation is not None:
                    self.mitigation.on_victim_refreshed(request.bank, request.row, cycle)
                if self.victim_refresh_hook is not None:
                    self.victim_refresh_hook(request.bank, request.row, cycle)
                return True
        return False

    def _issue_from_queue_reference(
        self, queue: List[MemoryRequest], cycle: int, is_write: bool
    ) -> bool:
        if not queue:
            return False
        # First ready: a request whose row is already open and can issue its
        # column access now (row hit).
        for index, request in enumerate(queue):
            bank = self.banks[request.bank]
            if (
                bank.open_row == request.row
                and bank.can_column_access(cycle, is_write)
                and self.rank.can_use_data_bus(cycle)
            ):
                self._issue_column(queue, index, cycle, is_write)
                return True
        # Then oldest first: progress the oldest request towards opening its row.
        for request in queue:
            bank_index = request.bank
            bank = self.banks[bank_index]
            if bank.open_row == request.row:
                continue  # waiting for column timing; nothing to issue
            if bank.open_row is not None:
                if bank.can_precharge(cycle) and not self._row_has_pending_hit(
                    bank_index, bank.open_row, queue
                ):
                    bank.precharge(cycle)
                    self._sync_bank(bank_index)
                    self._read_hits[bank_index] = 0
                    self._write_hits[bank_index] = 0
                    self.stats.row_conflicts += 1
                    return True
                continue
            if bank.can_activate(cycle) and self.rank.can_activate(cycle):
                bank.activate(cycle, request.row)
                self._sync_bank(bank_index)
                self.rank.record_activate(cycle)
                self.stats.demand_activates += 1
                self.stats.demand_busy_cycles += self.timings.trc
                self._recount_hits(bank_index, request.row)
                self._notify_activation(bank_index, request.row, cycle)
                if self.activate_hook is not None:
                    self.activate_hook(bank_index, request.row, cycle)
                return True
        return False

    # ------------------------------------------------------------------
    # Refresh handling
    # ------------------------------------------------------------------
    def _maybe_refresh(self, cycle: int) -> bool:
        """Issue the periodic all-bank refresh (caller checks ``_next_refresh``)."""
        timings = self.timings
        # Close all banks and block the rank for tRFC.
        start = cycle
        for bank in self.banks:
            start = max(start, bank.next_precharge if bank.open_row is not None else cycle)
        end = start + timings.trfc
        for bank in self.banks:
            bank.block_until(end)
        # Every bank is closed now; no queued request is a row hit any more.
        for bank_index in range(self.config.banks):
            self._sync_bank(bank_index)
            self._read_hits[bank_index] = 0
            self._write_hits[bank_index] = 0
        self._refresh_until = end
        self._next_refresh += timings.trefi
        self.stats.refresh_commands += 1
        self.stats.refresh_busy_cycles += timings.trfc
        if self.mitigation is not None:
            for bank, row in self.mitigation.on_refresh(cycle):
                self._enqueue_victim_refresh(bank, row, cycle)
        return True

    # ------------------------------------------------------------------
    # Scheduling (FR-FCFS)
    # ------------------------------------------------------------------
    #
    # The scheduling helpers double as the horizon computation: each returns
    # ``None`` when it issued a command this cycle, and otherwise the
    # earliest future cycle at which any of its queued requests could have a
    # command issued.  Every bound uses only timers that move when commands
    # issue (bank timers, rank tRRD/tFAW, data-bus occupancy) plus queue
    # contents that only change at events, so a failed scan's horizon stays
    # valid until the next event.
    def _schedule(self, cycle: int) -> Optional[int]:
        horizon = _NEVER
        rank_activate = self.rank.next_activate_cycle()
        # Victim refreshes have priority: they are the mitigation mechanism's
        # correctness-critical work.
        if self.victim_queue:
            victim_horizon = self._issue_victim_refresh(cycle, rank_activate)
            if victim_horizon is None:
                return None
            if victim_horizon < horizon:
                horizon = victim_horizon
        read_horizon = self._issue_from_queue(
            self.read_queue, cycle, False, rank_activate
        )
        if read_horizon is None:
            return None
        if read_horizon < horizon:
            horizon = read_horizon
        # Drain writes when there is no read work to do or the queue is deep.
        drain_writes = (
            not self.read_queue
            or len(self.write_queue) >= self.config.write_queue_depth // 2
        )
        if drain_writes:
            write_horizon = self._issue_from_queue(
                self.write_queue, cycle, True, rank_activate
            )
            if write_horizon is None:
                return None
            if write_horizon < horizon:
                horizon = write_horizon
        return horizon

    def _issue_victim_refresh(self, cycle: int, rank_activate: int) -> Optional[int]:
        horizon = _NEVER
        for index, request in enumerate(self.victim_queue):
            bank = self.banks[request.bank]
            if bank.open_row is not None:
                if bank.can_precharge(cycle):
                    bank.precharge(cycle)
                    self._sync_bank(request.bank)
                    self._read_hits[request.bank] = 0
                    self._write_hits[request.bank] = 0
                    return None
                if bank.next_precharge < horizon:
                    horizon = bank.next_precharge
                continue
            if bank.can_activate(cycle) and self.rank.can_activate(cycle):
                # A victim refresh is an activate followed by a precharge; the
                # bank is occupied for a full row cycle.
                bank.activate(cycle, request.row)
                self.rank.record_activate(cycle)
                bank.block_until(cycle + self.timings.trc)
                self._sync_bank(request.bank)
                self.stats.mitigation_refreshes += 1
                self.stats.mitigation_busy_cycles += self.timings.trc
                request.complete(cycle + self.timings.trc)
                self.victim_queue.pop(index)
                if self.mitigation is not None:
                    self.mitigation.on_victim_refreshed(request.bank, request.row, cycle)
                if self.victim_refresh_hook is not None:
                    self.victim_refresh_hook(request.bank, request.row, cycle)
                return None
            bound = bank.next_activate
            if rank_activate > bound:
                bound = rank_activate
            if bound < horizon:
                horizon = bound
        return horizon

    def _issue_from_queue(
        self, queue: List[MemoryRequest], cycle: int, is_write: bool, rank_activate: int
    ) -> Optional[int]:
        if not queue:
            return _NEVER
        if is_write:
            pending = self._write_pending
            hits = self._write_hits
            column_timers = self._bank_next_write
        else:
            pending = self._read_pending
            hits = self._read_hits
            column_timers = self._bank_next_read
        open_rows = self._bank_open_row
        activate_timers = self._bank_next_activate
        precharge_timers = self._bank_next_precharge
        bus_ready = self.rank.data_bus_ready_cycle()
        bus_free = cycle >= bus_ready
        # Classify every bank with queued work in one O(banks) pass:
        #
        # * a bank with pending hits either has a hit ready to issue now
        #   (``hit_mask``) or yields the cycle its column access becomes
        #   legal; its open row must not be precharged either way;
        # * an open bank without hits is a conflict: precharge when legal
        #   (``precharge_mask``), else bound by its precharge timer;
        # * a closed bank activates when bank and rank allow
        #   (``activate_mask``), else is bound by those timers.
        horizon = _NEVER
        hit_mask = 0
        precharge_mask = 0
        activate_mask = 0
        rank_can_activate: Optional[bool] = None
        for bank_index in range(len(pending)):
            if not pending[bank_index]:
                continue
            if hits[bank_index]:
                column_ready = column_timers[bank_index]
                if bus_free and cycle >= column_ready:
                    hit_mask |= 1 << bank_index
                else:
                    if bus_ready > column_ready:
                        column_ready = bus_ready
                    if column_ready < horizon:
                        horizon = column_ready
                continue
            if open_rows[bank_index] is not None:
                bound = precharge_timers[bank_index]
                if cycle >= bound:
                    precharge_mask |= 1 << bank_index
                elif bound < horizon:
                    horizon = bound
                continue
            if cycle >= activate_timers[bank_index]:
                if rank_can_activate is None:
                    rank_can_activate = self.rank.can_activate(cycle)
                if rank_can_activate:
                    activate_mask |= 1 << bank_index
                    continue
                bound = rank_activate
            else:
                bound = activate_timers[bank_index]
                if rank_activate > bound:
                    bound = rank_activate
            if bound < horizon:
                horizon = bound
        # First ready: the oldest queued row hit among hit-ready banks.
        if hit_mask:
            for index, request in enumerate(queue):
                if (hit_mask >> request.bank) & 1 and request.row == open_rows[request.bank]:
                    self._issue_column(queue, index, cycle, is_write)
                    return None
        # Then oldest first: the oldest request whose bank can open or close
        # a row right now.
        if precharge_mask or activate_mask:
            for request in queue:
                bank_index = request.bank
                if (precharge_mask >> bank_index) & 1:
                    self.banks[bank_index].precharge(cycle)
                    self._sync_bank(bank_index)
                    # This pass's queue had no hits on the bank (that is what
                    # allowed the precharge), but the other queue may have;
                    # the bank is closed now, so neither has any.
                    self._read_hits[bank_index] = 0
                    self._write_hits[bank_index] = 0
                    self.stats.row_conflicts += 1
                    return None
                if (activate_mask >> bank_index) & 1:
                    self.banks[bank_index].activate(cycle, request.row)
                    self._sync_bank(bank_index)
                    self.rank.record_activate(cycle)
                    self.stats.demand_activates += 1
                    self.stats.demand_busy_cycles += self.timings.trc
                    self._recount_hits(bank_index, request.row)
                    self._notify_activation(bank_index, request.row, cycle)
                    if self.activate_hook is not None:
                        self.activate_hook(bank_index, request.row, cycle)
                    return None
        return horizon

    def _recount_hits(self, bank_index: int, open_row: int) -> None:
        """Refresh the per-bank hit counters after a bank opened ``open_row``."""
        count = 0
        for request in self.read_queue:
            if request.bank == bank_index and request.row == open_row:
                count += 1
        self._read_hits[bank_index] = count
        count = 0
        for request in self.write_queue:
            if request.bank == bank_index and request.row == open_row:
                count += 1
        self._write_hits[bank_index] = count

    def _row_has_pending_hit(
        self, bank_index: int, open_row: int, queue: List[MemoryRequest]
    ) -> bool:
        """Whether any queued request still targets the bank's open row."""
        for request in queue:
            if request.bank == bank_index and request.row == open_row:
                return True
        return False

    def _issue_column(
        self, queue: List[MemoryRequest], index: int, cycle: int, is_write: bool
    ) -> None:
        request = queue.pop(index)
        self.wake_count += 1
        if is_write:
            self._write_pending[request.bank] -= 1
            self._write_hits[request.bank] -= 1
        else:
            self._read_pending[request.bank] -= 1
            self._read_hits[request.bank] -= 1
        bank = self.banks[request.bank]
        data_done = bank.column_access(cycle, is_write)
        self._sync_bank(request.bank)
        self.rank.occupy_data_bus(cycle)
        self.stats.row_hits += 1
        self.stats.demand_busy_cycles += self.timings.burst_cycles
        if is_write:
            self.stats.writes_serviced += 1
            return
        self.stats.reads_serviced += 1
        self._pending_completions.append((data_done, request))
        if data_done < self.earliest_completion_cycle:
            self.earliest_completion_cycle = data_done

    def _complete_due(self, cycle: int) -> bool:
        if cycle < self.earliest_completion_cycle:
            return False
        still_pending = []
        earliest = _NEVER
        for done_cycle, request in self._pending_completions:
            if done_cycle <= cycle:
                request.complete(cycle)
                self.stats.read_latency_total += cycle - request.arrival_cycle
                self.stats.read_latency_samples += 1
            else:
                still_pending.append((done_cycle, request))
                if done_cycle < earliest:
                    earliest = done_cycle
        completed = len(still_pending) < len(self._pending_completions)
        self._pending_completions = still_pending
        self.earliest_completion_cycle = earliest
        if completed:
            self.wake_count += 1
        return completed

    # ------------------------------------------------------------------
    # Event horizon
    # ------------------------------------------------------------------
    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which controller state can change.

        Ticking the controller at any cycle in ``(cycle, horizon)`` is
        guaranteed to complete no request, issue no command and trigger no
        refresh, so an event-driven loop can jump directly to the horizon.
        This is the *pure* (non-mutating) horizon oracle; the simulation loop
        itself consumes the equivalent value a quiescent :meth:`tick` returns
        as a byproduct of its failed scheduling scan, and
        ``tests/sim/test_event_horizon.py`` pins the two implementations to
        each other.  The computation folds in, exactly:

        * the periodic refresh schedule (``_next_refresh``, which already
          reflects a mitigation's increased refresh rate),
        * pending read-data completions,
        * per-request issue opportunities (bank timers, rank tRRD/tFAW, and
          data-bus occupancy for every queued demand request and victim
          refresh), and
        * any autonomous mitigation timer
          (:meth:`repro.mitigations.base.MitigationMechanism.next_event_cycle`).
        """
        floor = cycle + 1
        horizon = self._next_refresh
        if self.earliest_completion_cycle < horizon:
            horizon = self.earliest_completion_cycle
        if self.mitigation is not None:
            timer = self.mitigation.next_event_cycle(cycle)
            if timer is not None and timer < horizon:
                horizon = timer
        if horizon <= floor:
            return floor
        issue = self._next_issue_cycle(floor)
        if issue < horizon:
            horizon = issue
        return horizon if horizon > floor else floor

    def _next_issue_cycle(self, floor: int) -> int:
        """Earliest cycle (at or after ``floor``) at which any queued request
        could have a command issued for it.

        Mirrors :meth:`_schedule` case by case; every per-request bound uses
        only timers that move when commands issue, so the bound stays valid
        until the next event.  Scheduling is suspended while an all-bank
        refresh occupies the rank, so no issue can predate ``_refresh_until``.
        """
        base = self._refresh_until if self._refresh_until > floor else floor
        horizon = self._next_refresh  # an issue opportunity always recurs by then
        banks = self.banks
        rank = self.rank
        rank_activate = rank.next_activate_cycle()
        for request in self.victim_queue:
            bank = banks[request.bank]
            if bank.open_row is not None:
                ready = bank.next_precharge
            else:
                ready = bank.next_activate
                if rank_activate > ready:
                    ready = rank_activate
            if ready < horizon:
                if ready <= base:
                    return base
                horizon = ready
        horizon = self._queue_issue_horizon(
            self.read_queue, False, horizon, base, rank_activate
        )
        if horizon <= base:
            return base
        drain_writes = (
            not self.read_queue
            or len(self.write_queue) >= self.config.write_queue_depth // 2
        )
        if drain_writes:
            horizon = self._queue_issue_horizon(
                self.write_queue, True, horizon, base, rank_activate
            )
        return horizon if horizon > base else base

    def _queue_issue_horizon(
        self,
        queue: List[MemoryRequest],
        is_write: bool,
        horizon: int,
        base: int,
        rank_activate: int,
    ) -> int:
        """Fold one demand queue's earliest issue opportunity into ``horizon``."""
        if not queue:
            return horizon
        banks = self.banks
        bus_ready = self.rank.data_bus_ready_cycle()
        # Banks whose open row is still targeted by a queued request must not
        # be precharged (the FR-FCFS pending-hit guard); precompute them once.
        hit_banks = {
            request.bank
            for request in queue
            if banks[request.bank].open_row == request.row
        }
        for request in queue:
            bank = banks[request.bank]
            open_row = bank.open_row
            if open_row == request.row:
                ready = bank.next_write if is_write else bank.next_read
                if bus_ready > ready:
                    ready = bus_ready
            elif open_row is not None:
                if request.bank in hit_banks:
                    continue  # precharge blocked until the pending hits drain
                ready = bank.next_precharge
            else:
                ready = bank.next_activate
                if rank_activate > ready:
                    ready = rank_activate
            if ready < horizon:
                if ready <= base:
                    return base
                horizon = ready
        return horizon

    # ------------------------------------------------------------------
    # Mitigation integration
    # ------------------------------------------------------------------
    def _notify_activation(self, bank: int, row: int, cycle: int) -> None:
        if self.mitigation is None:
            return
        for victim_bank, victim_row in self.mitigation.on_activate(bank, row, cycle):
            self._enqueue_victim_refresh(victim_bank, victim_row, cycle)

    def _enqueue_victim_refresh(self, bank: int, row: int, cycle: int) -> None:
        if not 0 <= row < self.config.rows_per_bank:
            return
        request = MemoryRequest(
            request_type=RequestType.VICTIM_REFRESH,
            bank=bank,
            row=row,
            core_id=-1,
            arrival_cycle=cycle,
        )
        self.victim_queue.append(request)

    # ------------------------------------------------------------------
    # Bandwidth accounting
    # ------------------------------------------------------------------
    def extra_refresh_busy_cycles(self) -> float:
        """Refresh bank-time beyond what the nominal refresh rate would use.

        Non-zero only when a mitigation mechanism increases the refresh rate.
        """
        if self.timings.trefi >= self._nominal_trefi:
            return 0.0
        nominal_refreshes = self.stats.cycles / self._nominal_trefi
        nominal_busy = nominal_refreshes * self.timings.trfc
        return max(0.0, self.stats.refresh_busy_cycles - nominal_busy)

    def mitigation_busy_cycles(self) -> float:
        """Total DRAM bank-time consumed by the mitigation mechanism."""
        return self.stats.mitigation_busy_cycles + self.extra_refresh_busy_cycles()
