"""SPEC-like benchmark profiles and multi-programmed workload mixes.

The paper evaluates 48 eight-core workload mixes drawn randomly from SPEC
CPU2006, spanning aggregate MPKI values from 10 to 740.  The reproduction
defines a set of synthetic benchmark profiles whose single-core memory
intensities and localities span the same range as common SPEC CPU2006
characterizations, and draws random 8-core mixes from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.sim.trace import SyntheticTraceGenerator, TraceRecord
from repro.utils.rng import derive_seed, make_rng


@dataclass(frozen=True)
class BenchmarkProfile:
    """Memory behaviour of one synthetic benchmark.

    Attributes
    ----------
    name:
        SPEC-like benchmark name (for reporting only).
    mpki:
        Last-level-cache misses per kilo-instruction.
    row_locality:
        Probability of consecutive accesses to a bank hitting the same row.
    write_fraction:
        Fraction of memory requests that are writes.
    working_set_rows:
        Rows per bank the benchmark touches.
    """

    name: str
    mpki: float
    row_locality: float
    write_fraction: float
    working_set_rows: int

    def trace_generator(
        self,
        banks: int,
        rows_per_bank: int,
        columns_per_row: int,
        seed: int,
    ) -> SyntheticTraceGenerator:
        """Build a trace generator matching this profile for a given system."""
        return SyntheticTraceGenerator(
            mpki=self.mpki,
            row_locality=self.row_locality,
            write_fraction=self.write_fraction,
            banks=banks,
            rows_per_bank=rows_per_bank,
            columns_per_row=columns_per_row,
            working_set_rows=min(self.working_set_rows, rows_per_bank),
            seed=seed,
        )


#: Synthetic stand-ins for SPEC CPU2006 benchmarks.  MPKI values follow the
#: commonly reported single-core intensities (compute-bound benchmarks below
#: 1 MPKI are omitted since they produce negligible DRAM traffic).
SPEC_LIKE_BENCHMARKS: Tuple[BenchmarkProfile, ...] = (
    BenchmarkProfile("mcf-like", mpki=90.0, row_locality=0.25, write_fraction=0.25, working_set_rows=4096),
    BenchmarkProfile("lbm-like", mpki=45.0, row_locality=0.55, write_fraction=0.45, working_set_rows=2048),
    BenchmarkProfile("milc-like", mpki=30.0, row_locality=0.40, write_fraction=0.30, working_set_rows=2048),
    BenchmarkProfile("soplex-like", mpki=28.0, row_locality=0.50, write_fraction=0.20, working_set_rows=1024),
    BenchmarkProfile("libquantum-like", mpki=25.0, row_locality=0.85, write_fraction=0.10, working_set_rows=512),
    BenchmarkProfile("omnetpp-like", mpki=21.0, row_locality=0.30, write_fraction=0.30, working_set_rows=2048),
    BenchmarkProfile("gcc-like", mpki=16.0, row_locality=0.45, write_fraction=0.30, working_set_rows=1024),
    BenchmarkProfile("sphinx3-like", mpki=12.0, row_locality=0.60, write_fraction=0.15, working_set_rows=512),
    BenchmarkProfile("bwaves-like", mpki=10.0, row_locality=0.70, write_fraction=0.25, working_set_rows=1024),
    BenchmarkProfile("astar-like", mpki=6.0, row_locality=0.35, write_fraction=0.25, working_set_rows=512),
    BenchmarkProfile("gobmk-like", mpki=3.0, row_locality=0.50, write_fraction=0.25, working_set_rows=256),
    BenchmarkProfile("h264ref-like", mpki=1.5, row_locality=0.65, write_fraction=0.20, working_set_rows=256),
)


@dataclass(frozen=True)
class WorkloadMix:
    """A multi-programmed workload: one benchmark per core."""

    name: str
    benchmarks: Tuple[BenchmarkProfile, ...]

    @property
    def aggregate_mpki(self) -> float:
        """Sum of per-core MPKI values (the paper reports 10-740)."""
        return sum(benchmark.mpki for benchmark in self.benchmarks)

    def build_traces(
        self,
        banks: int,
        rows_per_bank: int,
        columns_per_row: int,
        requests_per_core: int,
        seed: int = 0,
    ) -> List[List[TraceRecord]]:
        """Generate one trace per core."""
        traces = []
        for core_id, benchmark in enumerate(self.benchmarks):
            generator = benchmark.trace_generator(
                banks=banks,
                rows_per_bank=rows_per_bank,
                columns_per_row=columns_per_row,
                seed=derive_seed(seed, self.name, core_id),
            )
            traces.append(generator.generate(requests_per_core))
        return traces


def make_workload_mixes(
    num_mixes: int = 48,
    cores: int = 8,
    seed: int = 0,
    benchmarks: Sequence[BenchmarkProfile] = SPEC_LIKE_BENCHMARKS,
) -> List[WorkloadMix]:
    """Draw random multi-programmed mixes, as the paper does from SPEC CPU2006.

    >>> mixes = make_workload_mixes(num_mixes=4, cores=8, seed=1)
    >>> len(mixes), len(mixes[0].benchmarks)
    (4, 8)
    """
    rng = make_rng(seed, "workload-mixes")
    mixes: List[WorkloadMix] = []
    for index in range(num_mixes):
        chosen = tuple(
            benchmarks[int(rng.integers(0, len(benchmarks)))] for _ in range(cores)
        )
        mixes.append(WorkloadMix(name=f"mix{index:02d}", benchmarks=chosen))
    return mixes


def mix_mpki_range(mixes: Sequence[WorkloadMix]) -> Tuple[float, float]:
    """Smallest and largest aggregate MPKI across a set of mixes."""
    values = [mix.aggregate_mpki for mix in mixes]
    return (min(values), max(values))
