"""Per-bank and rank-level DRAM timing state machines.

The model enforces the timing constraints that matter for the evaluation's
relative results: row-cycle time within a bank (tRCD / tRAS / tRP / tRC),
activation spacing across banks (tRRD, tFAW), data-bus occupancy for bursts,
and all-bank refresh (tRFC every tREFI).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.sim.timing import DramTimings


@dataclass(slots=True)
class BankState:
    """Timing state of one DRAM bank."""

    timings: DramTimings
    open_row: Optional[int] = None
    #: earliest cycle at which each command type may be issued to this bank
    next_activate: int = 0
    next_precharge: int = 0
    next_read: int = 0
    next_write: int = 0
    #: cycle until which the bank is busy with an operation (for utilization stats)
    busy_until: int = 0
    last_activate_cycle: int = -1

    # ------------------------------------------------------------------
    # Command legality and issue
    # ------------------------------------------------------------------
    def can_activate(self, cycle: int) -> bool:
        """Whether an ACT may be issued this cycle (bank must be closed)."""
        return self.open_row is None and cycle >= self.next_activate

    def can_precharge(self, cycle: int) -> bool:
        """Whether a PRE may be issued this cycle (a row must be open)."""
        return self.open_row is not None and cycle >= self.next_precharge

    def can_column_access(self, cycle: int, is_write: bool) -> bool:
        """Whether a RD/WR to the open row may be issued this cycle."""
        if self.open_row is None:
            return False
        return cycle >= (self.next_write if is_write else self.next_read)

    def activate(self, cycle: int, row: int) -> None:
        """Issue ACT: open ``row`` and set downstream timing constraints."""
        timings = self.timings
        self.open_row = row
        self.last_activate_cycle = cycle
        self.next_read = cycle + timings.trcd
        self.next_write = cycle + timings.trcd
        self.next_precharge = cycle + timings.tras
        self.next_activate = cycle + timings.trc
        self.busy_until = max(self.busy_until, cycle + timings.trcd)

    def precharge(self, cycle: int) -> None:
        """Issue PRE: close the open row."""
        self.open_row = None
        self.next_activate = max(self.next_activate, cycle + self.timings.trp)
        self.busy_until = max(self.busy_until, cycle + self.timings.trp)

    def column_access(self, cycle: int, is_write: bool) -> int:
        """Issue RD/WR to the open row; returns the data-completion cycle."""
        timings = self.timings
        if is_write:
            data_done = cycle + timings.tcl + timings.burst_cycles + timings.twr
            self.next_precharge = max(self.next_precharge, data_done)
            self.next_read = max(self.next_read, cycle + timings.tccd_l + timings.twtr)
            self.next_write = max(self.next_write, cycle + timings.tccd_l)
        else:
            data_done = cycle + timings.tcl + timings.burst_cycles
            self.next_precharge = max(self.next_precharge, cycle + timings.trtp)
            self.next_read = max(self.next_read, cycle + timings.tccd_l)
            self.next_write = max(self.next_write, cycle + timings.tccd_l)
        self.busy_until = max(self.busy_until, data_done)
        return data_done

    def block_until(self, cycle: int) -> None:
        """Block the bank until ``cycle`` (used for refresh)."""
        self.open_row = None
        self.next_activate = max(self.next_activate, cycle)
        self.next_precharge = max(self.next_precharge, cycle)
        self.next_read = max(self.next_read, cycle)
        self.next_write = max(self.next_write, cycle)
        self.busy_until = max(self.busy_until, cycle)

    # ------------------------------------------------------------------
    # Event horizon
    # ------------------------------------------------------------------
    def next_event_cycle(self) -> int:
        """Earliest cycle at which any command to this bank could become legal.

        While the bank is closed the only possible command is an ACT; while a
        row is open the possibilities are a column access to it or a PRE.  The
        returned cycle is a lower bound on the bank's next state change, so an
        event-driven simulation loop may jump the clock to the minimum of
        these horizons without missing a command opportunity (the bank's
        timers only move when a command is issued, i.e. at an event).

        This is the bank-level horizon primitive; the memory controller
        sharpens it per queued request -- selecting the one relevant timer
        for a hit, conflict, or activation candidate -- from flat mirrors of
        these same fields (see ``MemoryController._sync_bank``).
        """
        if self.open_row is None:
            return self.next_activate
        return min(self.next_precharge, self.next_read, self.next_write)


@dataclass(slots=True)
class RankState:
    """Rank-level constraints shared by all banks: tRRD, tFAW and the data bus.

    The ``k_*`` fields are batch-kernel mirrors, attached by
    :class:`repro.sim.kernel.BatchKernel` when this rank's controller is part
    of a :class:`~repro.sim.batch.SimulationBatch`: ``k_next`` / ``k_bus`` /
    ``k_faw`` are the batch's per-simulation ``(S,)`` arrays (indexed by
    ``k_s``), and ``k_ring`` is this simulation's row of the last-four-ACT
    ring.  The ring records the four most recent activate cycles *ever*
    (oldest first), so ``k_faw + tFAW`` is exactly the tFAW admission bound
    without the deque's expiry bookkeeping.  All stay ``None`` outside a
    batch, in which case the guarded writes cost one attribute check.
    """

    timings: DramTimings
    next_activate: int = 0
    data_bus_free: int = 0
    recent_activates: Deque[int] = field(default_factory=deque)
    k_next: Optional[object] = None
    k_bus: Optional[object] = None
    k_faw: Optional[object] = None
    k_ring: Optional[object] = None
    k_s: int = 0

    def can_activate(self, cycle: int) -> bool:
        """Whether any bank in the rank may receive an ACT this cycle."""
        if cycle < self.next_activate:
            return False
        self._expire(cycle)
        return len(self.recent_activates) < 4

    def record_activate(self, cycle: int) -> None:
        """Account for an issued ACT (tRRD and tFAW tracking)."""
        self.next_activate = cycle + self.timings.trrd_l
        self.recent_activates.append(cycle)
        self._expire(cycle)
        ring = self.k_ring
        if ring is not None:
            s = self.k_s
            self.k_next[s] = self.next_activate
            ring[0] = ring[1]
            ring[1] = ring[2]
            ring[2] = ring[3]
            ring[3] = cycle
            self.k_faw[s] = ring[0]

    def can_use_data_bus(self, cycle: int) -> bool:
        """Whether the shared data bus is free for a new burst."""
        return cycle + self.timings.tcl >= self.data_bus_free

    def occupy_data_bus(self, cycle: int) -> None:
        """Occupy the data bus for one burst starting after CAS latency."""
        start = cycle + self.timings.tcl
        self.data_bus_free = max(self.data_bus_free, start + self.timings.burst_cycles)
        if self.k_bus is not None:
            self.k_bus[self.k_s] = self.data_bus_free

    def _expire(self, cycle: int) -> None:
        window_start = cycle - self.timings.tfaw
        while self.recent_activates and self.recent_activates[0] <= window_start:
            self.recent_activates.popleft()

    # ------------------------------------------------------------------
    # Event horizon
    # ------------------------------------------------------------------
    def next_activate_cycle(self) -> int:
        """Earliest cycle at which the rank could admit another ACT.

        Combines the tRRD timer with tFAW: while four activates sit in the
        rolling window, the next one becomes legal only once the oldest
        leaves the window.
        """
        ready = self.next_activate
        if len(self.recent_activates) >= 4:
            ready = max(ready, self.recent_activates[0] + self.timings.tfaw)
        return ready

    def data_bus_ready_cycle(self) -> int:
        """Earliest cycle at which a new burst could claim the data bus."""
        return self.data_bus_free - self.timings.tcl
