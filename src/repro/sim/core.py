"""Simple core model (Table 6: 4 GHz, 4-wide issue, 128-entry window).

The core executes a trace of interleaved non-memory instructions and memory
requests.  Non-memory instructions retire at the issue width; memory reads
occupy a slot in the instruction window until their data returns from the
memory controller, providing memory-level parallelism bounded by the window
size; writes are posted and never stall the core.  This matches the simple
core model used by Ramulator-based evaluations.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

from repro.sim.config import SystemConfig
from repro.sim.events import NEVER
from repro.sim.requests import MemoryRequest, RequestType
from repro.sim.trace import TraceRecord

__all__ = ["NEVER", "CoreStats", "SimpleCore", "flatten_trace"]


def flatten_trace(trace: Sequence[TraceRecord]):
    """Split a trace into parallel per-field lists.

    The batch kernel's per-(simulation, core) cells step the trace through
    flat lists instead of :class:`~repro.sim.trace.TraceRecord` attribute
    chains -- same data, cheaper hot-path reads.  Returns
    ``(bubbles, is_write, banks, rows, columns)``.
    """
    bubbles: List[int] = []
    is_write: List[bool] = []
    banks: List[int] = []
    rows: List[int] = []
    columns: List[int] = []
    for record in trace:
        bubbles.append(record.bubble_instructions)
        is_write.append(record.is_write)
        banks.append(record.bank)
        rows.append(record.row)
        columns.append(record.column)
    return bubbles, is_write, banks, rows, columns


@dataclass(slots=True)
class CoreStats:
    """Cumulative statistics for one core."""

    cpu_cycles: int = 0
    instructions_retired: int = 0
    memory_reads_issued: int = 0
    memory_writes_issued: int = 0
    stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        """Instructions retired per CPU cycle."""
        if self.cpu_cycles == 0:
            return 0.0
        return self.instructions_retired / self.cpu_cycles


class _WindowEntry:
    """One in-flight instruction-window entry (a pending memory read).

    The entry is itself a valid completion callback (calling it marks it
    completed), so issuers can pass the entry directly as a request's
    ``completion_callback`` instead of allocating a closure per read.
    """

    __slots__ = ("completed",)

    def __init__(self) -> None:
        self.completed = False

    def __call__(self, _cycle: int) -> None:
        self.completed = True


class SimpleCore:
    """Trace-driven core with an instruction window.

    Parameters
    ----------
    core_id:
        Index of the core in the simulated system.
    trace:
        The memory-access trace to execute.  The trace repeats from the
        beginning if the simulation runs longer than the trace.
    config:
        System configuration (issue width, window size).
    controller:
        The shared memory controller the core sends its requests to.
    """

    def __init__(
        self,
        core_id: int,
        trace: Sequence[TraceRecord],
        config: SystemConfig,
        controller,
    ) -> None:
        if not trace:
            raise ValueError("trace must contain at least one record")
        self.core_id = core_id
        self.trace = list(trace)
        self.config = config
        self.controller = controller
        self.stats = CoreStats()

        self._trace_index = 0
        self._bubbles_remaining = self.trace[0].bubble_instructions
        self._window: Deque[_WindowEntry] = deque()
        #: Which resource blocked the core's next memory request the last
        #: time :meth:`_record_blocked` returned ``True``: ``0`` = write
        #: queue full, ``1`` = read queue full, ``2`` = instruction window
        #: full with an incomplete head.  The event loop settles a deferred
        #: core only when its channel's wake actually fires.
        self.blocked_channel = -1
        #: Upper bound on CPU ticks the core receives per DRAM cycle; used to
        #: convert a bubble budget into a safe DRAM-cycle horizon.
        self._max_ticks_per_cycle = max(
            1, int(math.ceil(config.cpu_cycles_per_dram_cycle))
        )
        # Cached hot config scalars (attribute chains cost on the tick path).
        self._issue_width = config.issue_width
        self._window_limit = config.instruction_window
        self._read_depth = config.read_queue_depth
        self._write_depth = config.write_queue_depth

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> bool:
        """Advance the core by one CPU cycle.

        ``cycle`` is the current DRAM cycle, used only to timestamp requests.
        Returns whether the core retired or issued anything.  ``False``
        implies the core is blocked on the memory system; since queues only
        fill and completions only arrive between DRAM cycles, it will stay
        blocked for every further CPU tick of the same DRAM cycle.
        """
        stats = self.stats
        issue_width = self._issue_width
        stats.cpu_cycles += 1
        window = self._window
        if window and window[0].completed:
            retired = 0
            while retired < issue_width and window and window[0].completed:
                window.popleft()
                retired += 1
        issued = 0
        made_progress = False
        trace = self.trace
        while issued < issue_width:
            bubbles = self._bubbles_remaining
            if bubbles > 0:
                # Retire the run of buffered non-memory instructions in one
                # step (arithmetic-identical to retiring them one per loop
                # iteration).
                take = issue_width - issued
                if take > bubbles:
                    take = bubbles
                self._bubbles_remaining = bubbles - take
                stats.instructions_retired += take
                issued += take
                made_progress = True
                continue
            # The next instruction is a memory request.
            record = trace[self._trace_index]
            if record.is_write:
                request = MemoryRequest(
                    request_type=RequestType.WRITE,
                    bank=record.bank,
                    row=record.row,
                    column=record.column,
                    core_id=self.core_id,
                )
                if not self.controller.enqueue(request, cycle):
                    break  # write queue full; retry next cycle
                stats.memory_writes_issued += 1
            else:
                if len(window) >= self._window_limit:
                    break  # the window is full of outstanding reads
                entry = _WindowEntry()
                request = MemoryRequest(
                    request_type=RequestType.READ,
                    bank=record.bank,
                    row=record.row,
                    column=record.column,
                    core_id=self.core_id,
                    completion_callback=lambda _cycle, entry=entry: setattr(
                        entry, "completed", True
                    ),
                )
                if not self.controller.enqueue(request, cycle):
                    break  # read queue full; retry next cycle
                window.append(entry)
                stats.memory_reads_issued += 1
            # The memory instruction itself counts as one retired instruction.
            stats.instructions_retired += 1
            issued += 1
            made_progress = True
            self._trace_index = next_index = (self._trace_index + 1) % len(trace)
            self._bubbles_remaining = trace[next_index].bubble_instructions
        if not made_progress:
            stats.stall_cycles += 1
        return made_progress

    def run_ticks(self, cycle: int, ticks: int) -> None:
        """Apply ``ticks`` exact CPU ticks at one DRAM cycle (lone-core path).

        Replays the reference interleaving for a core running alone: tick
        until a tick makes no progress, then batch the remaining ticks of
        the DRAM cycle as stalls -- queues only fill and completions only
        arrive between DRAM cycles, so a blocked core stays blocked for the
        rest of the cycle.  Used by the event loop for single-core
        (alone-IPC) runs, where the multi-core tick-major interleaving
        collapses to a plain loop over this one core.
        """
        for index in range(ticks):
            if not self.tick(cycle):
                rest = ticks - index - 1
                if rest:
                    self.settle_stall(rest)
                return

    # ------------------------------------------------------------------
    # Event-driven fast path
    # ------------------------------------------------------------------
    #
    # Three tick patterns need no interaction with the memory controller and
    # can therefore be applied in bulk, bit-identically to ticking:
    #
    # * ``"stall"`` -- the next instruction is a memory request the core
    #   cannot issue (its queue is full, or the instruction window is full
    #   with an incomplete head).  Queues only *fill* while cores run, and
    #   completion flags only change inside ``MemoryController.tick``, so a
    #   stall observed after the controller's tick holds for every remaining
    #   CPU tick until the next controller event.
    # * ``"bubble"`` -- the core has enough non-memory instructions buffered
    #   to retire at full issue width for all requested ticks without
    #   reaching a memory request.
    # * ``"drain"`` -- the remaining bubbles run out within the requested
    #   ticks, but the memory request behind them is blocked (same condition
    #   as ``"stall"``), so the whole span retires the bubbles and then
    #   stalls without ever reaching the controller.
    #
    # In every pattern each tick still retires completed reads from the
    # window head (at most ``issue_width`` per tick), which the batched
    # application (:meth:`fast_tick`, :meth:`settle_stall`) replays exactly.

    def _record_blocked(self) -> bool:
        """Whether the next memory request cannot be issued.

        The blocking conditions (full queue, or full window with an
        incomplete head) can only be cleared by a controller event, so a
        blocked record stays blocked until the matching wake channel fires
        (recorded in :attr:`blocked_channel`): a write-queue pop, a
        read-queue pop, or a completion of one of this core's own reads.
        """
        record = self.trace[self._trace_index]
        controller = self.controller
        if record.is_write:
            if controller.write_len >= self._write_depth:
                self.blocked_channel = 0
                return True
            return False
        if controller.read_len >= self._read_depth:
            self.blocked_channel = 1
            return True
        window = self._window
        if len(window) >= self._window_limit and not window[0].completed:
            self.blocked_channel = 2
            return True
        return False

    def settle_stall(self, ticks: int) -> None:
        """Apply ``ticks`` stalled CPU ticks in bulk.

        Used by the event loop to settle deferred stall spans (and the tail
        of a cycle once a tick made no progress).  Completion flags are
        frozen while the controller is quiescent, so ``ticks`` calls to
        ``_retire()`` pop exactly the run of completed entries at the window
        head, capped at ``issue_width`` per tick.
        """
        stats = self.stats
        stats.cpu_cycles += ticks
        stats.stall_cycles += ticks
        retire_cap = ticks * self._issue_width
        window = self._window
        popped = 0
        while popped < retire_cap and window and window[0].completed:
            window.popleft()
            popped += 1

    def fast_tick(self, ticks: int) -> Optional[str]:
        """Classify and, when possible, batch-apply ``ticks`` CPU ticks.

        Returns the batch mode applied (``"bubble"``, ``"stall"`` or
        ``"drain"`` -- see the pattern notes above), or ``None`` when the
        core would reach an issuable memory request and must be ticked
        exactly.  This runs once per core per processed DRAM cycle, so the
        classification and its application are fused into one call.
        """
        issue_width = self._issue_width
        stats = self.stats
        bubbles = self._bubbles_remaining
        retire_cap = ticks * issue_width
        if bubbles >= retire_cap:
            self._bubbles_remaining = bubbles - retire_cap
            stats.cpu_cycles += ticks
            stats.instructions_retired += retire_cap
            mode = "bubble"
        else:
            if not self._record_blocked():
                return None
            stats.cpu_cycles += ticks
            if bubbles:
                self._bubbles_remaining = 0
                stats.instructions_retired += bubbles
                progress_ticks = bubbles // issue_width
                if bubbles - progress_ticks * issue_width:
                    progress_ticks += 1
                stats.stall_cycles += ticks - progress_ticks
                mode = "drain"
            else:
                stats.stall_cycles += ticks
                mode = "stall"
        window = self._window
        if window and window[0].completed:
            popped = 0
            while popped < retire_cap and window and window[0].completed:
                window.popleft()
                popped += 1
        return mode

    def next_event_cycle(self, cycle: int) -> int:
        """DRAM cycle before which this core is guaranteed not to interact
        with the memory controller.

        A core whose next memory request is blocked returns :data:`NEVER`
        (only a controller event can wake it, and retiring leftover bubbles
        never touches the controller); a core with ``n`` buffered bubble
        instructions cannot reach its next memory request for
        ``n // issue_width`` CPU ticks, which is converted into DRAM cycles
        conservatively; an issuing core returns ``cycle + 1``.

        This is the *polling* horizon: it is only valid until the next
        controller event (a wake can unblock the core).  A persistent event
        entry must use :meth:`wake_bound` instead.
        """
        if self._record_blocked():
            return NEVER
        if self._bubbles_remaining > 0:
            safe_ticks = self._bubbles_remaining // self._issue_width
            return cycle + 1 + safe_ticks // self._max_ticks_per_cycle
        return cycle + 1

    def wake_bound(self, cycle: int) -> int:
        """Wake-entry bound: like :meth:`next_event_cycle` but valid *across*
        controller wake events.

        A blocked core still holding buffered bubbles reports its bubble
        bound rather than :data:`NEVER`: a wake may unblock it mid-bubble
        without any loop-visible core transition (it never stalls, so it is
        never deferred and no wake reschedules it), and the bubble bound is
        a valid lower bound either way -- the bubbles must drain before the
        core can reach the controller.  Only a blocked core with no bubbles
        reports :data:`NEVER` (its next classification is a stall, so the
        unblocking wake event itself revives its entry).  The event loop
        keys the :class:`~repro.sim.events.EventQueue` entries on this.
        """
        if self._bubbles_remaining > 0:
            safe_ticks = self._bubbles_remaining // self._issue_width
            return cycle + 1 + safe_ticks // self._max_ticks_per_cycle
        if self._record_blocked():
            return NEVER
        return cycle + 1

    @property
    def outstanding_reads(self) -> int:
        """Number of reads currently occupying the instruction window."""
        return len(self._window)
