"""Simple core model (Table 6: 4 GHz, 4-wide issue, 128-entry window).

The core executes a trace of interleaved non-memory instructions and memory
requests.  Non-memory instructions retire at the issue width; memory reads
occupy a slot in the instruction window until their data returns from the
memory controller, providing memory-level parallelism bounded by the window
size; writes are posted and never stall the core.  This matches the simple
core model used by Ramulator-based evaluations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

from repro.sim.config import SystemConfig
from repro.sim.requests import MemoryRequest, RequestType
from repro.sim.trace import TraceRecord


@dataclass
class CoreStats:
    """Cumulative statistics for one core."""

    cpu_cycles: int = 0
    instructions_retired: int = 0
    memory_reads_issued: int = 0
    memory_writes_issued: int = 0
    stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        """Instructions retired per CPU cycle."""
        if self.cpu_cycles == 0:
            return 0.0
        return self.instructions_retired / self.cpu_cycles


class _WindowEntry:
    """One in-flight instruction-window entry (a pending memory read)."""

    __slots__ = ("completed",)

    def __init__(self) -> None:
        self.completed = False


class SimpleCore:
    """Trace-driven core with an instruction window.

    Parameters
    ----------
    core_id:
        Index of the core in the simulated system.
    trace:
        The memory-access trace to execute.  The trace repeats from the
        beginning if the simulation runs longer than the trace.
    config:
        System configuration (issue width, window size).
    controller:
        The shared memory controller the core sends its requests to.
    """

    def __init__(
        self,
        core_id: int,
        trace: Sequence[TraceRecord],
        config: SystemConfig,
        controller,
    ) -> None:
        if not trace:
            raise ValueError("trace must contain at least one record")
        self.core_id = core_id
        self.trace = list(trace)
        self.config = config
        self.controller = controller
        self.stats = CoreStats()

        self._trace_index = 0
        self._bubbles_remaining = self.trace[0].bubble_instructions
        self._window: Deque[_WindowEntry] = deque()

    # ------------------------------------------------------------------
    # Trace stepping
    # ------------------------------------------------------------------
    def _advance_trace(self) -> None:
        self._trace_index = (self._trace_index + 1) % len(self.trace)
        self._bubbles_remaining = self.trace[self._trace_index].bubble_instructions

    def _current_record(self) -> TraceRecord:
        return self.trace[self._trace_index]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Advance the core by one CPU cycle.

        ``cycle`` is the current DRAM cycle, used only to timestamp requests.
        """
        self.stats.cpu_cycles += 1
        self._retire()
        issued = 0
        made_progress = False
        while issued < self.config.issue_width:
            if self._bubbles_remaining > 0:
                self._bubbles_remaining -= 1
                self.stats.instructions_retired += 1
                issued += 1
                made_progress = True
                continue
            # The next instruction is a memory request.
            record = self._current_record()
            if record.is_write:
                request = MemoryRequest(
                    request_type=RequestType.WRITE,
                    bank=record.bank,
                    row=record.row,
                    column=record.column,
                    core_id=self.core_id,
                )
                if not self.controller.enqueue(request, cycle):
                    break  # write queue full; retry next cycle
                self.stats.memory_writes_issued += 1
            else:
                if len(self._window) >= self.config.instruction_window:
                    break  # the window is full of outstanding reads
                entry = _WindowEntry()
                request = MemoryRequest(
                    request_type=RequestType.READ,
                    bank=record.bank,
                    row=record.row,
                    column=record.column,
                    core_id=self.core_id,
                    completion_callback=lambda _cycle, entry=entry: setattr(
                        entry, "completed", True
                    ),
                )
                if not self.controller.enqueue(request, cycle):
                    break  # read queue full; retry next cycle
                self._window.append(entry)
                self.stats.memory_reads_issued += 1
            # The memory instruction itself counts as one retired instruction.
            self.stats.instructions_retired += 1
            issued += 1
            made_progress = True
            self._advance_trace()
        if not made_progress:
            self.stats.stall_cycles += 1

    def _retire(self) -> None:
        """Retire completed reads from the head of the window (in order)."""
        retired = 0
        while (
            self._window
            and self._window[0].completed
            and retired < self.config.issue_width
        ):
            self._window.popleft()
            retired += 1

    @property
    def outstanding_reads(self) -> int:
        """Number of reads currently occupying the instruction window."""
        return len(self._window)
