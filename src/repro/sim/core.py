"""Simple core model (Table 6: 4 GHz, 4-wide issue, 128-entry window).

The core executes a trace of interleaved non-memory instructions and memory
requests.  Non-memory instructions retire at the issue width; memory reads
occupy a slot in the instruction window until their data returns from the
memory controller, providing memory-level parallelism bounded by the window
size; writes are posted and never stall the core.  This matches the simple
core model used by Ramulator-based evaluations.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

from repro.sim.config import SystemConfig
from repro.sim.requests import MemoryRequest, RequestType
from repro.sim.trace import TraceRecord

#: Sentinel horizon for a component that cannot act again until some other
#: event wakes it (far beyond any simulated run).  Shared by the core (a
#: stalled core waits for a completion or queue drain) and the controller
#: (a queue with no timer-bound issue opportunity).
NEVER = 1 << 62


@dataclass
class CoreStats:
    """Cumulative statistics for one core."""

    cpu_cycles: int = 0
    instructions_retired: int = 0
    memory_reads_issued: int = 0
    memory_writes_issued: int = 0
    stall_cycles: int = 0

    @property
    def ipc(self) -> float:
        """Instructions retired per CPU cycle."""
        if self.cpu_cycles == 0:
            return 0.0
        return self.instructions_retired / self.cpu_cycles


class _WindowEntry:
    """One in-flight instruction-window entry (a pending memory read)."""

    __slots__ = ("completed",)

    def __init__(self) -> None:
        self.completed = False


class SimpleCore:
    """Trace-driven core with an instruction window.

    Parameters
    ----------
    core_id:
        Index of the core in the simulated system.
    trace:
        The memory-access trace to execute.  The trace repeats from the
        beginning if the simulation runs longer than the trace.
    config:
        System configuration (issue width, window size).
    controller:
        The shared memory controller the core sends its requests to.
    """

    def __init__(
        self,
        core_id: int,
        trace: Sequence[TraceRecord],
        config: SystemConfig,
        controller,
    ) -> None:
        if not trace:
            raise ValueError("trace must contain at least one record")
        self.core_id = core_id
        self.trace = list(trace)
        self.config = config
        self.controller = controller
        self.stats = CoreStats()

        self._trace_index = 0
        self._bubbles_remaining = self.trace[0].bubble_instructions
        self._window: Deque[_WindowEntry] = deque()
        #: Upper bound on CPU ticks the core receives per DRAM cycle; used to
        #: convert a bubble budget into a safe DRAM-cycle horizon.
        self._max_ticks_per_cycle = max(
            1, int(math.ceil(config.cpu_cycles_per_dram_cycle))
        )

    # ------------------------------------------------------------------
    # Trace stepping
    # ------------------------------------------------------------------
    def _advance_trace(self) -> None:
        self._trace_index = (self._trace_index + 1) % len(self.trace)
        self._bubbles_remaining = self.trace[self._trace_index].bubble_instructions

    def _current_record(self) -> TraceRecord:
        return self.trace[self._trace_index]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> bool:
        """Advance the core by one CPU cycle.

        ``cycle`` is the current DRAM cycle, used only to timestamp requests.
        Returns whether the core retired or issued anything.  ``False``
        implies the core is blocked on the memory system; since queues only
        fill and completions only arrive between DRAM cycles, it will stay
        blocked for every further CPU tick of the same DRAM cycle.
        """
        self.stats.cpu_cycles += 1
        self._retire()
        issued = 0
        made_progress = False
        while issued < self.config.issue_width:
            if self._bubbles_remaining > 0:
                self._bubbles_remaining -= 1
                self.stats.instructions_retired += 1
                issued += 1
                made_progress = True
                continue
            # The next instruction is a memory request.
            record = self._current_record()
            if record.is_write:
                request = MemoryRequest(
                    request_type=RequestType.WRITE,
                    bank=record.bank,
                    row=record.row,
                    column=record.column,
                    core_id=self.core_id,
                )
                if not self.controller.enqueue(request, cycle):
                    break  # write queue full; retry next cycle
                self.stats.memory_writes_issued += 1
            else:
                if len(self._window) >= self.config.instruction_window:
                    break  # the window is full of outstanding reads
                entry = _WindowEntry()
                request = MemoryRequest(
                    request_type=RequestType.READ,
                    bank=record.bank,
                    row=record.row,
                    column=record.column,
                    core_id=self.core_id,
                    completion_callback=lambda _cycle, entry=entry: setattr(
                        entry, "completed", True
                    ),
                )
                if not self.controller.enqueue(request, cycle):
                    break  # read queue full; retry next cycle
                self._window.append(entry)
                self.stats.memory_reads_issued += 1
            # The memory instruction itself counts as one retired instruction.
            self.stats.instructions_retired += 1
            issued += 1
            made_progress = True
            self._advance_trace()
        if not made_progress:
            self.stats.stall_cycles += 1
        return made_progress

    def _retire(self) -> None:
        """Retire completed reads from the head of the window (in order)."""
        retired = 0
        while (
            self._window
            and self._window[0].completed
            and retired < self.config.issue_width
        ):
            self._window.popleft()
            retired += 1

    # ------------------------------------------------------------------
    # Event-driven fast path
    # ------------------------------------------------------------------
    #
    # Three tick patterns need no interaction with the memory controller and
    # can therefore be applied in bulk, bit-identically to ticking:
    #
    # * ``"stall"`` -- the next instruction is a memory request the core
    #   cannot issue (its queue is full, or the instruction window is full
    #   with an incomplete head).  Queues only *fill* while cores run, and
    #   completion flags only change inside ``MemoryController.tick``, so a
    #   stall observed after the controller's tick holds for every remaining
    #   CPU tick until the next controller event.
    # * ``"bubble"`` -- the core has enough non-memory instructions buffered
    #   to retire at full issue width for all requested ticks without
    #   reaching a memory request.
    # * ``"drain"`` -- the remaining bubbles run out within the requested
    #   ticks, but the memory request behind them is blocked (same condition
    #   as ``"stall"``), so the whole span retires the bubbles and then
    #   stalls without ever reaching the controller.
    #
    # In every pattern each tick still retires completed reads from the
    # window head (at most ``issue_width`` per tick), which the batched
    # application (:meth:`fast_tick`, :meth:`settle_stall`) replays exactly.

    def _record_blocked(self) -> bool:
        """Whether the next memory request cannot be issued.

        The blocking conditions (full queue, or full window with an
        incomplete head) can only be cleared by a controller event, so a
        blocked record stays blocked until the next wake.
        """
        record = self.trace[self._trace_index]
        controller = self.controller
        if record.is_write:
            return len(controller.write_queue) >= self.config.write_queue_depth
        if len(controller.read_queue) >= self.config.read_queue_depth:
            return True
        window = self._window
        return len(window) >= self.config.instruction_window and not window[0].completed

    def settle_stall(self, ticks: int) -> None:
        """Apply ``ticks`` stalled CPU ticks in bulk.

        Used by the event loop to settle deferred stall spans (and the tail
        of a cycle once a tick made no progress).  Completion flags are
        frozen while the controller is quiescent, so ``ticks`` calls to
        ``_retire()`` pop exactly the run of completed entries at the window
        head, capped at ``issue_width`` per tick.
        """
        stats = self.stats
        stats.cpu_cycles += ticks
        stats.stall_cycles += ticks
        retire_cap = ticks * self.config.issue_width
        window = self._window
        popped = 0
        while popped < retire_cap and window and window[0].completed:
            window.popleft()
            popped += 1

    def fast_tick(self, ticks: int) -> Optional[str]:
        """Classify and, when possible, batch-apply ``ticks`` CPU ticks.

        Returns the batch mode applied (``"bubble"``, ``"stall"`` or
        ``"drain"`` -- see the pattern notes above), or ``None`` when the
        core would reach an issuable memory request and must be ticked
        exactly.  This runs once per core per processed DRAM cycle, so the
        classification and its application are fused into one call.
        """
        issue_width = self.config.issue_width
        stats = self.stats
        bubbles = self._bubbles_remaining
        retire_cap = ticks * issue_width
        if bubbles >= retire_cap:
            self._bubbles_remaining = bubbles - retire_cap
            stats.cpu_cycles += ticks
            stats.instructions_retired += retire_cap
            mode = "bubble"
        else:
            if not self._record_blocked():
                return None
            stats.cpu_cycles += ticks
            if bubbles:
                self._bubbles_remaining = 0
                stats.instructions_retired += bubbles
                progress_ticks = bubbles // issue_width
                if bubbles - progress_ticks * issue_width:
                    progress_ticks += 1
                stats.stall_cycles += ticks - progress_ticks
                mode = "drain"
            else:
                stats.stall_cycles += ticks
                mode = "stall"
        window = self._window
        if window and window[0].completed:
            popped = 0
            while popped < retire_cap and window and window[0].completed:
                window.popleft()
                popped += 1
        return mode

    def next_event_cycle(self, cycle: int) -> int:
        """DRAM cycle before which this core is guaranteed not to interact
        with the memory controller.

        A core whose next memory request is blocked returns :data:`NEVER`
        (only a controller event can wake it, and retiring leftover bubbles
        never touches the controller); a core with ``n`` buffered bubble
        instructions cannot reach its next memory request for
        ``n // issue_width`` CPU ticks, which is converted into DRAM cycles
        conservatively; an issuing core returns ``cycle + 1``.
        """
        if self._record_blocked():
            return NEVER
        if self._bubbles_remaining > 0:
            safe_ticks = self._bubbles_remaining // self.config.issue_width
            return cycle + 1 + safe_ticks // self._max_ticks_per_cycle
        return cycle + 1

    @property
    def outstanding_reads(self) -> int:
        """Number of reads currently occupying the instruction window."""
        return len(self._window)
