"""Figure 6: spatial distribution of RowHammer bit flips around the victim.

Observation 6: newer nodes (LPDDR4) flip rows farther from the victim.
Observation 7: flips decrease with distance; no flips in the aggressor rows.
"""

from conftest import print_banner

from repro.analysis.figures import build_figure6_spatial
from repro.analysis.report import format_table
from repro.core.spatial import SpatialStudyConfig, flips_in_aggressor_rows

#: Flip rate the chips are normalized to.  The paper uses 1e-6 on real chips;
#: the simulated chips are ~1e5x smaller, so an equivalently "sparse" rate is
#: a few flips per thousand cells.
TARGET_RATE = 5e-3


def test_fig6_spatial_distribution(benchmark, bench_session, representative_chips):
    chips = {
        key: chip for key, chip in representative_chips.items() if chip.is_rowhammerable()
    }
    # target_rate makes the study itself calibrate a chip-specific hammer
    # count (falling back to the 150k ceiling when the rate is unreachable).
    config = SpatialStudyConfig(target_rate=TARGET_RATE)

    def run():
        return bench_session.run("fig6-spatial", config, chips=list(chips.values())).payloads()

    spatial_results = benchmark.pedantic(run, rounds=1, iterations=1)
    figure6 = build_figure6_spatial(spatial_results)

    print_banner("Figure 6: fraction of bit flips by row offset from the victim")
    offsets = list(range(-6, 7))
    rows = []
    for (type_node, manufacturer), series in sorted(figure6.items()):
        rows.append(
            [f"{type_node}/{manufacturer}"]
            + [round(series.get(offset, {"mean": 0.0})["mean"], 3) for offset in offsets]
        )
    print(format_table(["configuration"] + [str(o) for o in offsets], rows))

    chips_by_id = {chip.chip_id: chip for chip in chips.values()}
    for result in spatial_results:
        chip = chips_by_id[result.chip_id]
        if chip.remapper.name != "identity":
            # Manufacturer B's LPDDR4-1x chips remap consecutive logical rows
            # onto shared wordlines, so the logical-offset histogram mixes
            # even and odd offsets (Section 4.3); the strict invariants below
            # apply to the physical address space only.
            continue
        # No flips in the aggressor rows (they are refreshed by activation).
        assert flips_in_aggressor_rows(result) == 0
        # Flips only at even offsets from the victim (Section 5.4).
        for offset, count in result.flips_by_offset.items():
            if count > 0:
                assert offset % 2 == 0
        # The victim row collects the most flips (Observation 7).
        fractions = result.fraction_by_offset()
        if result.total_flips:
            assert fractions[0] == max(fractions.values())

    # Observation 6: LPDDR4 chips flip farther away than DDR3/DDR4 chips.
    ddr_max = max(
        r.max_observed_offset()
        for r in spatial_results
        if r.type_node.startswith("DDR") and r.total_flips
    )
    lpddr4_max = max(
        r.max_observed_offset()
        for r in spatial_results
        if r.type_node.startswith("LPDDR4") and r.total_flips
    )
    assert ddr_max <= 2
    assert lpddr4_max >= ddr_max
