#!/usr/bin/env python3
"""CI smoke for sharded study execution: run, kill cache subset, resume.

Exercises the crash-recovery contract of the work-unit layer end to end on
a small simulator-backed Figure 10 config:

1. **run** -- a fresh sharded sweep through a disk-backed
   :class:`repro.ResultStore` (every work unit cached individually),
2. **kill** -- delete a subset of the unit cache entries, simulating a
   crash that lost part of the work,
3. **resume** -- a new session over the same store directory must
   re-execute exactly the killed units and merge a payload bit-identical
   to the uninterrupted run.

Writes ``BENCH_shard.json`` (unit-cache stats and wall-clock times) next
to ``BENCH_sim.json`` so the golden CI job can upload both.  Exits
non-zero on any contract violation.

Run with::

    PYTHONPATH=src python benchmarks/smoke_sharded_resume.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.mitigation_study import MitigationStudyConfig
from repro.experiments import ExperimentSession, ResultStore

#: Small but multi-mechanism, multi-mix config so the kill set spans
#: baselines and cells of different mechanisms.
SMOKE_CONFIG = MitigationStudyConfig(
    hcfirst_values=(2_000, 256),
    mechanisms=("PARA", "ProHIT", "Ideal"),
    num_mixes=2,
    rows_per_bank=512,
    dram_cycles=2_000,
    requests_per_core=400,
    seed=3,
)

#: How many unit cache entries the "crash" loses.
KILL_COUNT = 3


def points_of(outcome):
    return [point.to_dict() for point in outcome.single().points]


def main() -> int:
    store_root = Path(tempfile.mkdtemp(prefix="shard-smoke-")) / "store"
    report = {"study": "fig10-mitigations", "kill_count": KILL_COUNT}

    started = time.perf_counter()
    fresh = ExperimentSession(store=ResultStore(store_root), seed=3).run(
        "fig10-mitigations", SMOKE_CONFIG
    )
    report["fresh_wall_s"] = round(time.perf_counter() - started, 3)
    report["units_total"] = fresh.units_total
    report["fresh_executed"] = fresh.executed
    reference = points_of(fresh)

    store = ResultStore(store_root)
    unit_files = store.entry_paths("fig10-mitigations", units_only=True)
    report["unit_cache_entries"] = len(unit_files)
    assert len(unit_files) == fresh.units_total, (
        f"expected {fresh.units_total} unit cache entries, found {len(unit_files)}"
    )
    for path in unit_files[:: max(1, len(unit_files) // KILL_COUNT)][:KILL_COUNT]:
        path.unlink()
    killed = fresh.units_total - len(
        store.entry_paths("fig10-mitigations", units_only=True)
    )
    report["killed"] = killed

    started = time.perf_counter()
    resume_store = ResultStore(store_root)
    resumed = ExperimentSession(store=resume_store, seed=3).run(
        "fig10-mitigations", SMOKE_CONFIG
    )
    report["resume_wall_s"] = round(time.perf_counter() - started, 3)
    report["resume_executed"] = resumed.executed
    report["resume_cache_hits"] = resumed.cache_hits
    report["resume_store_stats"] = {
        "hits": resume_store.stats.hits,
        "misses": resume_store.stats.misses,
        "puts": resume_store.stats.puts,
    }
    report["resume_identical"] = points_of(resumed) == reference

    assert resumed.executed == killed, (
        f"resume executed {resumed.executed} units, expected exactly the "
        f"{killed} killed ones"
    )
    assert resumed.cache_hits == fresh.units_total - killed
    assert report["resume_identical"], "resumed payload differs from fresh run"

    out_path = Path(__file__).resolve().parent.parent / "BENCH_shard.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nsharded-resume smoke OK -> {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
