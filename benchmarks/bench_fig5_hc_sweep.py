"""Figure 5: hammer count versus RowHammer bit-flip rate.

Observation 4: the relationship is linear on a log-log scale.
Observation 5: newer DDR4 nodes have higher flip rates at the same HC.
"""

from conftest import print_banner

from repro.analysis.figures import build_figure5_hc_sweep
from repro.analysis.report import format_table
from repro.core.sweeps import SweepStudyConfig, loglog_slope

HAMMER_COUNTS = (15_000, 25_000, 40_000, 65_000, 100_000, 150_000)


def test_fig5_hammer_count_sweep(benchmark, bench_session, representative_chips):
    chips = {
        key: chip for key, chip in representative_chips.items() if chip.is_rowhammerable()
    }
    config = SweepStudyConfig(hammer_counts=HAMMER_COUNTS)

    def run():
        return bench_session.run(
            "fig5-hc-sweep", config, chips=list(chips.values())
        ).payloads()

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    figure5 = build_figure5_hc_sweep(sweeps)

    print_banner("Figure 5: bit-flip rate vs. hammer count (per configuration)")
    rows = []
    for (type_node, manufacturer), series in sorted(figure5.items()):
        rows.append(
            [f"{type_node}/{manufacturer}"]
            + [f"{series.get(hc, 0.0):.2e}" for hc in HAMMER_COUNTS]
        )
    print(format_table(["configuration"] + [str(hc) for hc in HAMMER_COUNTS], rows))

    slopes = {s.chip_id: loglog_slope(s) for s in sweeps}
    print("\nlog-log slopes:", {k: round(v, 2) for k, v in slopes.items() if v is not None})

    # Observation 4: log-log-linear growth with a clearly positive slope for
    # every chip that produced enough points to fit one; chips with only a
    # couple of flipping points (weak DDR3 chips, on-die-ECC noise) are not
    # asserted on individually.
    well_sampled = [
        slopes[s.chip_id]
        for s in sweeps
        if slopes[s.chip_id] is not None and sum(1 for p in s.points if p.flip_rate > 0) >= 3
    ]
    assert well_sampled
    assert sum(well_sampled) / len(well_sampled) > 2.0

    # Observation 5: newer DDR4 chips flip more at the same hammer count.
    for manufacturer in ("A", "C"):
        old = figure5.get(("DDR4-old", manufacturer))
        new = figure5.get(("DDR4-new", manufacturer))
        if old and new:
            assert new[150_000] >= old[150_000]

    # Flip rate is non-decreasing in hammer count for every configuration.
    for series in figure5.values():
        ordered = [series[hc] for hc in sorted(series)]
        assert ordered == sorted(ordered)
