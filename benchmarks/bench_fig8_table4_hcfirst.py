"""Figure 8 and Table 4: HC_first distributions and per-configuration minima.

Observations 10-11: newer chips need fewer hammers for the first bit flip,
down to 4.8k in the most vulnerable LPDDR4-1y chips.
"""

from conftest import print_banner

from repro.analysis.figures import build_figure8_hcfirst_distribution
from repro.analysis.report import format_table
from repro.analysis.tables import PAPER_TABLE4_MIN_HCFIRST_K, build_table4_min_hcfirst


def test_fig8_table4_hcfirst(benchmark, bench_session):
    def run():
        return bench_session.run("fig8-hcfirst").payloads()

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table4 = build_table4_min_hcfirst(results)
    figure8 = build_figure8_hcfirst_distribution(results)

    print_banner("Figure 8: HC_first distribution per configuration (box statistics)")
    rows = []
    for (type_node, manufacturer), stats in sorted(figure8.items()):
        if stats is None:
            rows.append([f"{type_node}/{manufacturer}", "no bit flips", "", "", ""])
        else:
            rows.append(
                [
                    f"{type_node}/{manufacturer}",
                    int(stats.minimum),
                    int(stats.median),
                    int(stats.maximum),
                    stats.count,
                ]
            )
    print(format_table(["configuration", "min", "median", "max", "chips"], rows))

    print_banner("Table 4: lowest HC_first (x1000) -- measured vs. paper")
    rows = []
    for type_node in sorted(table4):
        row = [type_node]
        for manufacturer in ("A", "B", "C"):
            measured = table4[type_node].get(manufacturer)
            paper = PAPER_TABLE4_MIN_HCFIRST_K.get(type_node, {}).get(manufacturer)
            measured_text = f"{measured:.1f}" if measured is not None else ">150"
            paper_text = f"{paper}" if paper is not None else "N/A"
            row.append(f"{measured_text} (paper {paper_text})")
        rows.append(row)
    print(format_table(["type-node", "Mfr. A", "Mfr. B", "Mfr. C"], rows))

    # Observation 11: the most vulnerable chips are LPDDR4-1y with HC_first
    # in the single-digit thousands.
    lpddr4_1y_a = table4["LPDDR4-1y"]["A"]
    assert lpddr4_1y_a is not None and lpddr4_1y_a < 12.0

    # Observation 10: newer nodes are more vulnerable within a manufacturer.
    assert table4["DDR4-new"]["A"] < table4["DDR4-old"]["A"]
    assert table4["LPDDR4-1y"]["A"] < table4["LPDDR4-1x"]["A"]

    # Measured minima track the paper's Table 4 within a factor of ~2 for
    # every configuration where both report a value below the test limit.
    for type_node, per_mfr in table4.items():
        for manufacturer, measured in per_mfr.items():
            paper = PAPER_TABLE4_MIN_HCFIRST_K.get(type_node, {}).get(manufacturer)
            if measured is None or paper is None or paper >= 150:
                continue
            assert 0.4 <= measured / paper <= 2.5, (type_node, manufacturer, measured, paper)
