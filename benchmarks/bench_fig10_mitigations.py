"""Figure 10: mitigation-mechanism overhead as HC_first decreases.

Regenerates both panels -- (a) DRAM bandwidth overhead and (b) normalized
system performance -- for the five state-of-the-art mechanisms and the ideal
refresh-based mechanism, sweeping HC_first from 200k down to 64.

The simulated interval is much shorter than the paper's 200M-instruction
runs, so absolute overheads differ (see EXPERIMENTS.md); the qualitative
results the paper draws its conclusions from are asserted below.

The sweep runs on the event-driven simulator fast path (the default
``step_mode``), which is bit-identical to the cycle-by-cycle reference --
see ``tests/sim/test_golden_trace.py`` and ``benchmarks/bench_sim_speed.py``
for the equivalence and speedup evidence.
"""

from conftest import print_banner

from repro.analysis.mitigation_study import run_mitigation_study
from repro.analysis.report import format_table
from repro.sim.config import SystemConfig
from repro.sim.workloads import make_workload_mixes

HCFIRST_SWEEP = (200_000, 50_000, 25_600, 6_400, 2_000, 1_024, 256, 128, 64)
MECHANISMS = ("IncreasedRefresh", "PARA", "ProHIT", "MRLoc", "TWiCe", "TWiCe-ideal", "Ideal")


def test_fig10_mitigation_scaling(benchmark):
    config = SystemConfig(rows_per_bank=4096)
    mixes = make_workload_mixes(num_mixes=3, cores=config.cores, seed=11)

    def run():
        return run_mitigation_study(
            system_config=config,
            workload_mixes=mixes,
            hcfirst_values=HCFIRST_SWEEP,
            mechanisms=MECHANISMS,
            dram_cycles=10_000,
            requests_per_core=2_500,
            seed=5,
        )

    study = benchmark.pedantic(run, rounds=1, iterations=1)

    print_banner("Figure 10a: DRAM bandwidth overhead of RowHammer mitigation (%)")
    rows = []
    for mechanism in MECHANISMS:
        series = study.series_for(mechanism)
        rows.append(
            [mechanism]
            + [
                round(series[hc].bandwidth_overhead_avg, 2) if hc in series else "-"
                for hc in HCFIRST_SWEEP
            ]
        )
    print(format_table(["mechanism"] + [str(hc) for hc in HCFIRST_SWEEP], rows))

    print_banner("Figure 10b: normalized system performance (%)")
    rows = []
    for mechanism in MECHANISMS:
        series = study.series_for(mechanism)
        rows.append(
            [mechanism]
            + [
                round(series[hc].normalized_performance_avg, 1) if hc in series else "-"
                for hc in HCFIRST_SWEEP
            ]
        )
    print(format_table(["mechanism"] + [str(hc) for hc in HCFIRST_SWEEP], rows))

    para = study.series_for("PARA")
    ideal = study.series_for("Ideal")

    # PARA's overhead grows monotonically as chips become more vulnerable,
    # and becomes severe at the projected future HC_first values.
    performances = [para[hc].normalized_performance_avg for hc in HCFIRST_SWEEP]
    assert all(b <= a + 1.0 for a, b in zip(performances, performances[1:]))
    assert para[64].normalized_performance_avg < para[2_000].normalized_performance_avg
    assert para[64].bandwidth_overhead_avg > 10.0

    # The ideal refresh-based mechanism stays close to baseline performance
    # even at very low HC_first, and always beats PARA there (Section 6.2.2).
    assert ideal[64].normalized_performance_avg >= 95.0
    assert ideal[64].normalized_performance_avg >= para[64].normalized_performance_avg

    # ProHIT and MRLoc are only evaluated at HC_first = 2000 (Section 6.1)
    # where their overhead is small.
    for mechanism in ("ProHIT", "MRLoc"):
        series = study.series_for(mechanism)
        assert set(series) == {2_000}
        assert series[2_000].normalized_performance_avg >= 90.0

    # The increased refresh rate and (non-ideal) TWiCe do not scale below 32k.
    assert all(hc >= 32_000 for hc in study.series_for("IncreasedRefresh"))
    assert all(hc >= 32_000 for hc in study.series_for("TWiCe"))
