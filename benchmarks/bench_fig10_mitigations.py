"""Figure 10: mitigation-mechanism overhead as HC_first decreases.

Regenerates both panels -- (a) DRAM bandwidth overhead and (b) normalized
system performance -- for the five state-of-the-art mechanisms and the ideal
refresh-based mechanism, sweeping HC_first from 200k down to 64.

The simulated interval is much shorter than the paper's 200M-instruction
runs, so absolute overheads differ (see EXPERIMENTS.md); the qualitative
results the paper draws its conclusions from are asserted below.

The sweep runs on the event-driven simulator fast path (the default
``step_mode``), which is bit-identical to the cycle-by-cycle reference --
see ``tests/sim/test_golden_trace.py`` and ``benchmarks/bench_sim_speed.py``
for the equivalence and speedup evidence.

The study executes *sharded* through an :class:`repro.ExperimentSession`:
one work unit per workload-mix baseline and per (mechanism, HC_first, mix)
cell, cached individually in a :class:`repro.ResultStore` -- the timed run
is the fresh sharded sweep, and a replay afterwards asserts the unit cache
reproduces it bit-identically without executing a single unit.
"""

from conftest import print_banner

from repro.analysis.mitigation_study import MitigationStudyConfig
from repro.analysis.report import format_table
from repro.experiments import ExperimentSession, ResultStore

HCFIRST_SWEEP = (200_000, 50_000, 25_600, 6_400, 2_000, 1_024, 256, 128, 64)
MECHANISMS = ("IncreasedRefresh", "PARA", "ProHIT", "MRLoc", "TWiCe", "TWiCe-ideal", "Ideal")


def test_fig10_mitigation_scaling(benchmark):
    config = MitigationStudyConfig(
        hcfirst_values=HCFIRST_SWEEP,
        mechanisms=MECHANISMS,
        num_mixes=3,
        rows_per_bank=4096,
        dram_cycles=10_000,
        requests_per_core=2_500,
        seed=5,
    )
    store = ResultStore()  # in-memory: cache shared by the replay below

    def run():
        return ExperimentSession(store=store, seed=5).run("fig10-mitigations", config)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    study = outcome.single()

    # The sweep really ran sharded: every (mechanism, HC_first, mix) cell
    # plus one baseline per mix is its own cached work unit...
    assert outcome.units_total == outcome.executed > len(study.points)
    # ...and a replayed session merges the identical payload from the unit
    # cache without executing anything.
    replay = ExperimentSession(store=store, seed=5).run("fig10-mitigations", config)
    assert replay.executed == 0
    assert replay.cache_hits == outcome.units_total
    assert [p.to_dict() for p in replay.single().points] == [
        p.to_dict() for p in study.points
    ]

    print_banner("Figure 10a: DRAM bandwidth overhead of RowHammer mitigation (%)")
    rows = []
    for mechanism in MECHANISMS:
        series = study.series_for(mechanism)
        rows.append(
            [mechanism]
            + [
                round(series[hc].bandwidth_overhead_avg, 2) if hc in series else "-"
                for hc in HCFIRST_SWEEP
            ]
        )
    print(format_table(["mechanism"] + [str(hc) for hc in HCFIRST_SWEEP], rows))

    print_banner("Figure 10b: normalized system performance (%)")
    rows = []
    for mechanism in MECHANISMS:
        series = study.series_for(mechanism)
        rows.append(
            [mechanism]
            + [
                round(series[hc].normalized_performance_avg, 1) if hc in series else "-"
                for hc in HCFIRST_SWEEP
            ]
        )
    print(format_table(["mechanism"] + [str(hc) for hc in HCFIRST_SWEEP], rows))

    para = study.series_for("PARA")
    ideal = study.series_for("Ideal")

    # PARA's overhead grows monotonically as chips become more vulnerable,
    # and becomes severe at the projected future HC_first values.
    performances = [para[hc].normalized_performance_avg for hc in HCFIRST_SWEEP]
    assert all(b <= a + 1.0 for a, b in zip(performances, performances[1:]))
    assert para[64].normalized_performance_avg < para[2_000].normalized_performance_avg
    assert para[64].bandwidth_overhead_avg > 10.0

    # The ideal refresh-based mechanism stays close to baseline performance
    # even at very low HC_first, and always beats PARA there (Section 6.2.2).
    assert ideal[64].normalized_performance_avg >= 95.0
    assert ideal[64].normalized_performance_avg >= para[64].normalized_performance_avg

    # ProHIT and MRLoc are only evaluated at HC_first = 2000 (Section 6.1)
    # where their overhead is small.
    for mechanism in ("ProHIT", "MRLoc"):
        series = study.series_for(mechanism)
        assert set(series) == {2_000}
        assert series[2_000].normalized_performance_avg >= 90.0

    # The increased refresh rate and (non-ideal) TWiCe do not scale below 32k.
    assert all(hc >= 32_000 for hc in study.series_for("IncreasedRefresh"))
    assert all(hc >= 32_000 for hc in study.series_for("TWiCe"))
