"""Figure 9: hammer count to the first 64-bit word with 1, 2 and 3 bit flips.

Observations 12-13: a single-error-correcting code buys up to ~2.8x headroom
in HC_first, with diminishing returns for stronger codes.  The paper excludes
LPDDR4 chips (their on-die ECC already obfuscates flips), and so does this
benchmark.
"""

from conftest import print_banner

from repro.analysis.figures import build_figure9_ecc
from repro.analysis.report import format_table
from repro.core.ecc_analysis import ecc_word_analysis


def test_fig9_ecc_headroom(benchmark, representative_chips):
    chips = {
        key: chip
        for key, chip in representative_chips.items()
        if chip.is_rowhammerable() and not chip.has_on_die_ecc
    }

    def run():
        return [
            ecc_word_analysis(chip, hammer_limit=300_000, flips_per_word=(1, 2, 3))
            for chip in chips.values()
        ]

    analyses = benchmark.pedantic(run, rounds=1, iterations=1)
    figure9 = build_figure9_ecc(analyses)

    print_banner("Figure 9: HC to find the first 64-bit word with 1/2/3 flips")
    rows = []
    for (type_node, manufacturer), data in sorted(figure9.items()):
        hc = data["hc"]
        multiplier = data["multiplier"]
        rows.append(
            [
                f"{type_node}/{manufacturer}",
                int(hc[1]["mean"]),
                int(hc[2]["mean"]),
                int(hc[3]["mean"]),
                round(multiplier[2]["mean"], 2),
                round(multiplier[3]["mean"], 2),
            ]
        )
    print(
        format_table(
            ["configuration", "HC(1 flip)", "HC(2 flips)", "HC(3 flips)",
             "multiplier 1->2", "multiplier 2->3"],
            rows,
        )
    )

    # Observation 12: SEC ECC (surviving until 2 flips share a word) buys a
    # meaningful HC_first improvement on every analysed chip, and a clear
    # improvement on average.
    multipliers = []
    for analysis in analyses:
        hc1 = analysis.hc_first_word_with.get(1)
        hc2 = analysis.hc_first_word_with.get(2)
        if hc1 is None or hc2 is None:
            continue
        assert hc2 > hc1
        multipliers.append(analysis.multiplier(1, 2))
    assert multipliers
    assert all(multiplier > 1.05 for multiplier in multipliers)
    assert sum(multipliers) / len(multipliers) > 1.2
