"""Shared configuration for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper.  The simulated
chips are far smaller than real devices so the harnesses finish in seconds;
EXPERIMENTS.md records how each regenerated artefact compares with the paper.

The population fixtures are session-scoped so benchmarks that share a chip
population (for example Table 4 and Figure 8) reuse the same chips.
"""

from __future__ import annotations

import pytest

from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_population
from repro.dram.vulnerability import available_configurations

#: Geometry used by all characterization benchmarks.
BENCH_GEOMETRY = ChipGeometry(banks=1, rows_per_bank=48, row_bytes=32)

#: Chips per (type-node, manufacturer) configuration in the benchmark
#: population.  The paper tests 24-388 chips per configuration; three chips
#: per configuration keep the harness fast while still exposing chip-to-chip
#: variation.
CHIPS_PER_CONFIG = 3


@pytest.fixture(scope="session")
def bench_population():
    """One small chip population covering every configuration in Table 1."""
    return make_population(
        chips_per_config=CHIPS_PER_CONFIG, seed=2024, geometry=BENCH_GEOMETRY
    )


@pytest.fixture(scope="session")
def representative_chips(bench_population):
    """One representative chip per configuration (the paper plots these for
    Figures 4, 6 and 7)."""
    return {key: chips[0] for key, chips in bench_population.items()}


def print_banner(title: str) -> None:
    """Print a separator so benchmark output is easy to scan."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
