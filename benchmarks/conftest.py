"""Shared configuration for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper.  The simulated
chips are far smaller than real devices so the harnesses finish in seconds;
EXPERIMENTS.md records how each regenerated artefact compares with the paper.

The harnesses share one session-scoped :class:`repro.ExperimentSession` over
the Table 1 benchmark population, backed by a :class:`repro.ResultStore`:
benchmarks that run the same study on overlapping chip sets (for example
Figure 8 / Table 4 over all chips and Table 2 over the DDR3 subset) replay
each other's cached results instead of recomputing them.
"""

from __future__ import annotations

import pytest

from repro import ExperimentSession, ResultStore
from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_population
from repro.dram.vulnerability import available_configurations

#: Geometry used by all characterization benchmarks.
BENCH_GEOMETRY = ChipGeometry(banks=1, rows_per_bank=48, row_bytes=32)

#: Chips per (type-node, manufacturer) configuration in the benchmark
#: population.  The paper tests 24-388 chips per configuration; three chips
#: per configuration keep the harness fast while still exposing chip-to-chip
#: variation.
CHIPS_PER_CONFIG = 3

#: Seed of the benchmark population and session.
BENCH_SEED = 2024


@pytest.fixture(scope="session")
def bench_population():
    """One small chip population covering every configuration in Table 1."""
    return make_population(
        chips_per_config=CHIPS_PER_CONFIG, seed=BENCH_SEED, geometry=BENCH_GEOMETRY
    )


@pytest.fixture(scope="session")
def bench_store(tmp_path_factory):
    """Result cache shared by every benchmark of one pytest session."""
    return ResultStore(tmp_path_factory.mktemp("result-store"))


@pytest.fixture(scope="session")
def bench_session(bench_population, bench_store):
    """One ExperimentSession over the benchmark population.

    Studies run through this session are cached in ``bench_store``, so
    benchmarks sharing a (study, config, chip) triple -- Table 4 + Figure 8
    versus Table 2 -- do the hammering only once.
    """
    return ExperimentSession(bench_population, store=bench_store, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def representative_chips(bench_population):
    """One representative chip per configuration (the paper plots these for
    Figures 4, 6 and 7)."""
    return {key: chips[0] for key, chips in bench_population.items()}


def print_banner(title: str) -> None:
    """Print a separator so benchmark output is easy to scan."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
