#!/usr/bin/env python3
"""CI smoke for the experiment service: loopback fleet, one worker killed.

Stands up the full distributed stack inside one CI job -- an in-process
scheduler (:class:`repro.service.SchedulerThread`) plus **two real worker
subprocesses** (``python -m repro.service worker``) -- and checks the
service's two headline contracts:

1. **bit identity** -- a simulator-backed Figure 10 sweep submitted
   through :class:`repro.experiments.ServiceExecutor` merges payloads
   bit-identical to a local :class:`SerialExecutor` run;
2. **fault tolerance** -- with a deliberately slow study, one worker
   process is SIGKILLed while it holds a lease: the scheduler requeues
   exactly its incomplete units, the surviving worker re-executes them,
   and the merged payload still matches the serial reference.

Writes ``BENCH_service.json`` (throughput, lease/retry/requeue counters
and recovery timings) next to ``BENCH_sim.json``/``BENCH_shard.json`` so
the golden CI job can upload all three.  Exits non-zero on any contract
violation.

Run with::

    PYTHONPATH=src python benchmarks/smoke_service.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.mitigation_study import MitigationStudyConfig
from repro.experiments import ExperimentSession, SerialExecutor, ServiceExecutor
from repro.service import SchedulerThread, ServiceClient
from repro.service.selftest import ServiceSelfTestConfig

#: Simulator-backed sweep for the bit-identity phase (two mixes so the
#: unit count comfortably spans both workers' lease batches).
FIG10_CONFIG = MitigationStudyConfig(
    hcfirst_values=(2_000, 256),
    mechanisms=("PARA", "ProHIT", "Ideal"),
    num_mixes=2,
    rows_per_bank=512,
    dram_cycles=2_000,
    requests_per_core=400,
    seed=3,
)

#: Slow deterministic study for the kill phase: each unit sleeps long
#: enough that the victim is reliably caught mid-lease.
KILL_CONFIG = ServiceSelfTestConfig(units=8, rounds=50, unit_sleep_s=0.3, seed=4)


def spawn_worker(host, port, name, batch):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "worker",
            "--host", host, "--port", str(port),
            "--name", name, "--batch", str(batch),
        ],
        env=env,
    )


def points_of(outcome):
    return [point.to_dict() for point in outcome.single().points]


def wait_for(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def fig10_phase(report):
    """Two live workers, fig10 sweep, payloads vs SerialExecutor."""
    started = time.perf_counter()
    serial = ExperimentSession(executor=SerialExecutor(), seed=3).run(
        "fig10-mitigations", FIG10_CONFIG
    )
    serial_wall = time.perf_counter() - started
    reference = points_of(serial)

    with SchedulerThread() as scheduler:
        host, port = scheduler.address
        workers = [spawn_worker(host, port, f"smoke-w{i}", batch=2) for i in range(2)]
        try:
            started = time.perf_counter()
            service = ExperimentSession(
                executor=ServiceExecutor(host, port, label="smoke-fig10"), seed=3
            ).run("fig10-mitigations", FIG10_CONFIG)
            service_wall = time.perf_counter() - started
            with ServiceClient(host, port) as probe:
                status = probe.status()
        finally:
            for worker in workers:
                worker.terminate()
            for worker in workers:
                worker.wait(timeout=30.0)

    identical = points_of(service) == reference
    report["fig10"] = {
        "units_total": service.units_total,
        "serial_wall_s": round(serial_wall, 3),
        "service_wall_s": round(service_wall, 3),
        "service_units_per_s": round(service.units_total / service_wall, 2),
        "retries": service.retries,
        "requeues": service.requeues,
        "identical": identical,
        "counters": status["counters"],
        "unit_seconds": status.get("unit_seconds"),
        "throughput": status.get("throughput"),
    }
    assert identical, "service fig10 payloads differ from SerialExecutor"
    assert service.retries == 0, "healthy fleet reported retries"
    assert status["counters"]["units_completed"] == service.units_total


def kill_phase(report):
    """Two workers, one SIGKILLed mid-lease; run must recover bit-identically."""
    serial = ExperimentSession(executor=SerialExecutor(), seed=9).run(
        "service-selftest", KILL_CONFIG
    )
    with SchedulerThread(lease_ttl=2.0, backoff_base=0.05, backoff_cap=0.2) as scheduler:
        host, port = scheduler.address
        victim = spawn_worker(host, port, "victim", batch=2)
        survivor = spawn_worker(host, port, "survivor", batch=1)
        try:
            box = {}

            def run_study():
                session = ExperimentSession(
                    executor=ServiceExecutor(host, port, label="smoke-kill"), seed=9
                )
                box["result"] = session.run("service-selftest", KILL_CONFIG)

            runner = threading.Thread(target=run_study, daemon=True)
            started = time.perf_counter()
            runner.start()

            def victim_has_lease():
                with ServiceClient(host, port) as probe:
                    view = probe.status()["workers"].get("victim")
                return view is not None and view["leases_granted"] >= 1

            assert wait_for(victim_has_lease), "victim never got a lease"
            time.sleep(0.1)  # mid-unit: each unit sleeps 0.3s
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30.0)
            killed_at = time.perf_counter()

            runner.join(timeout=300.0)
            assert not runner.is_alive(), "service run did not finish after the kill"
            finished_at = time.perf_counter()
            result = box["result"]
            with ServiceClient(host, port) as probe:
                status = probe.status()
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=30.0)
            survivor.terminate()
            survivor.wait(timeout=30.0)

    identical = result.single() == serial.single()
    counters = status["counters"]
    report["kill_recovery"] = {
        "units_total": KILL_CONFIG.units,
        "wall_s": round(finished_at - started, 3),
        "recovered_in_s": round(finished_at - killed_at, 3),
        "retries": result.retries,
        "requeues": result.requeues,
        "identical": identical,
        "counters": counters,
        "survivor_units": status["workers"]["survivor"]["units_completed"],
    }
    assert identical, "post-kill payload differs from SerialExecutor"
    assert result.requeues >= 1, "the kill recovered zero units (raced the run?)"
    assert counters["units_requeued"] == result.requeues
    assert counters["units_completed"] == KILL_CONFIG.units
    assert counters["duplicate_completions"] == 0
    assert status["workers"]["victim"]["state"] == "dead"


def main() -> int:
    report = {"service": "repro.service", "workers": 2}
    fig10_phase(report)
    kill_phase(report)

    out_path = REPO_ROOT / "BENCH_service.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nservice smoke OK -> {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
