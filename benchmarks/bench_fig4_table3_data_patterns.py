"""Figure 4 and Table 3: data-pattern coverage and worst-case patterns.

The paper's Observation 2 (no single pattern finds all flips) and
Observation 3 (the worst-case pattern is consistent within a configuration)
are regenerated from per-chip coverage studies.
"""

from conftest import print_banner

from repro.analysis.figures import build_figure4_coverage
from repro.analysis.report import format_table
from repro.analysis.tables import PAPER_TABLE3_WORST_PATTERNS, build_table3_worst_patterns
from repro.core.coverage import pattern_coverage
from repro.core.data_patterns import STANDARD_PATTERNS


def test_fig4_coverage_and_table3_worst_patterns(benchmark, representative_chips):
    # Skip configurations whose chips essentially never flip (the paper marks
    # them "Not Enough Bit Flips").
    chips = {
        key: chip
        for key, chip in representative_chips.items()
        if chip.is_rowhammerable()
    }

    def run():
        return [pattern_coverage(chip, hammer_count=150_000) for chip in chips.values()]

    coverage_results = benchmark.pedantic(run, rounds=1, iterations=1)
    figure4 = build_figure4_coverage(coverage_results)
    table3 = build_table3_worst_patterns(coverage_results)

    print_banner("Figure 4: RowHammer bit-flip coverage per data pattern (%)")
    pattern_names = [pattern.name for pattern in STANDARD_PATTERNS]
    rows = []
    for (type_node, manufacturer), coverages in sorted(figure4.items()):
        rows.append(
            [f"{type_node}/{manufacturer}"]
            + [round(coverages.get(name, 0.0), 1) for name in pattern_names]
        )
    print(format_table(["configuration"] + pattern_names, rows))

    print_banner("Table 3: Worst-case data pattern per configuration")
    rows = []
    for type_node in sorted(table3):
        row = [type_node]
        for manufacturer in ("A", "B", "C"):
            measured = table3.get(type_node, {}).get(manufacturer)
            paper = PAPER_TABLE3_WORST_PATTERNS.get(type_node, {}).get(manufacturer)
            row.append(f"{measured or 'N/A'} (paper: {paper or 'N/A'})")
        rows.append(row)
    print(format_table(["type-node", "Mfr. A", "Mfr. B", "Mfr. C"], rows))

    # Observation 2: no pattern achieves full coverage on any chip.
    for result in coverage_results:
        if result.unique_flips_total < 10:
            continue
        assert max(result.coverage_by_pattern.values()) < 1.0

    # Table 3: measured worst-case patterns match the paper wherever the
    # paper reports one and the simulated chip produced enough flips.
    matches, comparisons = 0, 0
    for type_node, per_mfr in table3.items():
        for manufacturer, measured in per_mfr.items():
            paper = PAPER_TABLE3_WORST_PATTERNS.get(type_node, {}).get(manufacturer)
            if paper is None or measured is None:
                continue
            comparisons += 1
            if measured == paper:
                matches += 1
    assert comparisons > 0
    assert matches / comparisons >= 0.8
