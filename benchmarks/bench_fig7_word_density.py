"""Figure 7: number of RowHammer bit flips per 64-bit word.

Observation 8: a single 64-bit word can contain multiple flips even at a low
flip rate.  Observation 9: LPDDR4 chips (on-die ECC) show far fewer
single-flip words than DDR3/DDR4 chips.
"""

from conftest import print_banner

from repro.analysis.figures import build_figure7_word_density
from repro.analysis.report import format_table
from repro.core.word_density import WordDensityStudyConfig, single_flip_fraction

TARGET_RATE = 5e-3


def test_fig7_flips_per_word(benchmark, bench_session, representative_chips):
    chips = {
        key: chip for key, chip in representative_chips.items() if chip.is_rowhammerable()
    }
    config = WordDensityStudyConfig(target_rate=TARGET_RATE)

    def run():
        return bench_session.run(
            "fig7-word-density", config, chips=list(chips.values())
        ).payloads()

    density_results = benchmark.pedantic(run, rounds=1, iterations=1)
    figure7 = build_figure7_word_density(density_results)

    print_banner("Figure 7: fraction of 64-bit words containing N bit flips")
    rows = []
    for (type_node, manufacturer), series in sorted(figure7.items()):
        rows.append(
            [f"{type_node}/{manufacturer}"]
            + [round(series[n]["mean"], 3) for n in range(1, 6)]
        )
    print(format_table(["configuration", "1 flip", "2", "3", "4", "5"], rows))

    ddr_results = [r for r in density_results if r.type_node.startswith("DDR") and r.total_words_with_flips]
    lpddr4_results = [r for r in density_results if r.type_node.startswith("LPDDR4") and r.total_words_with_flips]
    assert ddr_results and lpddr4_results

    # Observation 9: DDR chips are dominated by single-flip words; LPDDR4
    # chips (on-die ECC) shift towards multi-flip words.
    ddr_single = sum(single_flip_fraction(r) for r in ddr_results) / len(ddr_results)
    lpddr4_single = sum(single_flip_fraction(r) for r in lpddr4_results) / len(lpddr4_results)
    print(f"\naverage single-flip fraction: DDR {ddr_single:.2f}, LPDDR4 {lpddr4_single:.2f}")
    assert ddr_single > lpddr4_single

    # Observation 8: some word contains more than one flip.
    assert any(r.max_flips_in_any_word() >= 2 for r in density_results)
