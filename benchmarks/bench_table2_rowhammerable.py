"""Table 2: fraction of DDR3 chips vulnerable to RowHammer below HC = 150k.

The paper finds that almost no DDR3-old chips flip within the test limit
while most DDR3-new chips from manufacturers B and C do (Observation 1).
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.analysis.tables import build_table2_rowhammerable


def test_table2_ddr3_rowhammerable_fraction(benchmark, bench_session):
    ddr3_chips = [
        chip
        for chip in bench_session.chips
        if chip.profile.type_node.value.startswith("DDR3")
    ]

    def run():
        # Same study + config as the Figure 8 / Table 4 benchmark, so when
        # that harness ran first every DDR3 result replays from the store.
        outcome = bench_session.run("fig8-hcfirst", chips=ddr3_chips)
        return outcome, build_table2_rowhammerable(outcome.payloads())

    outcome, table = benchmark.pedantic(run, rounds=1, iterations=1)
    results = outcome.payloads()
    if outcome.cache_hits:
        print(f"\n[result store] {outcome.cache_hits}/{len(results)} chips replayed from cache")

    print_banner("Table 2: Fraction of DDR3 chips vulnerable to RowHammer (HC < 150k)")
    rows = []
    for type_node in ("DDR3-old", "DDR3-new"):
        row = [type_node]
        for manufacturer in ("A", "B", "C"):
            hammerable, total = table.get(type_node, {}).get(manufacturer, (0, 0))
            row.append(f"{hammerable}/{total}")
        rows.append(row)
    print(format_table(["type-node", "Mfr. A", "Mfr. B", "Mfr. C"], rows))
    print("paper: DDR3-old 24/88, 0/88, 0/28; DDR3-new 8/72, 44/52, 96/104")

    # Shape checks mirroring Observation 1: DDR3-old chips of manufacturers B
    # and C never flip, and DDR3-new chips of B/C are mostly RowHammerable.
    for manufacturer in ("B", "C"):
        old_hammerable, old_total = table["DDR3-old"][manufacturer]
        new_hammerable, new_total = table["DDR3-new"][manufacturer]
        assert old_hammerable == 0
        assert new_hammerable / new_total >= 0.5
