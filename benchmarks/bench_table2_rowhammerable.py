"""Table 2: fraction of DDR3 chips vulnerable to RowHammer below HC = 150k.

The paper finds that almost no DDR3-old chips flip within the test limit
while most DDR3-new chips from manufacturers B and C do (Observation 1).
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.analysis.tables import build_table2_rowhammerable
from repro.core.first_flip import population_hcfirst


def test_table2_ddr3_rowhammerable_fraction(benchmark, bench_population):
    ddr3_chips = [
        chip
        for (type_node, _mfr), chips in bench_population.items()
        for chip in chips
        if type_node.value.startswith("DDR3")
    ]

    def run():
        results = population_hcfirst(ddr3_chips)
        return results, build_table2_rowhammerable(results)

    results, table = benchmark.pedantic(run, rounds=1, iterations=1)

    print_banner("Table 2: Fraction of DDR3 chips vulnerable to RowHammer (HC < 150k)")
    rows = []
    for type_node in ("DDR3-old", "DDR3-new"):
        row = [type_node]
        for manufacturer in ("A", "B", "C"):
            hammerable, total = table.get(type_node, {}).get(manufacturer, (0, 0))
            row.append(f"{hammerable}/{total}")
        rows.append(row)
    print(format_table(["type-node", "Mfr. A", "Mfr. B", "Mfr. C"], rows))
    print("paper: DDR3-old 24/88, 0/88, 0/28; DDR3-new 8/72, 44/52, 96/104")

    # Shape checks mirroring Observation 1: DDR3-old chips of manufacturers B
    # and C never flip, and DDR3-new chips of B/C are mostly RowHammerable.
    for manufacturer in ("B", "C"):
        old_hammerable, old_total = table["DDR3-old"][manufacturer]
        new_hammerable, new_total = table["DDR3-new"][manufacturer]
        assert old_hammerable == 0
        assert new_hammerable / new_total >= 0.5
