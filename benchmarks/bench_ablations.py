"""Ablation benchmarks for the design choices called out in DESIGN.md.

* PARA probability scaling: how the adjacent-row refresh probability (and
  therefore overhead) changes with the target bit error rate.
* On-die ECC on/off: the LPDDR4 behaviours (word density shift, broken
  flip-probability monotonicity) disappear without on-die ECC.
* TWiCe versus TWiCe-ideal: the published design's viability limit.
* Scheduler sensitivity: FR-FCFS row hits versus a row-locality-free
  workload (activation-bound behaviour that stresses mitigation mechanisms).
"""

from conftest import BENCH_GEOMETRY, print_banner

from repro.analysis.report import format_table
from repro.core.calibration import hammer_count_for_flip_rate
from repro.core.probability import flip_probability_study
from repro.core.word_density import single_flip_fraction, word_density
from repro.dram.population import make_chip
from repro.dram.vulnerability import PROFILES, VulnerabilityProfile, profile_for
from repro.mitigations.base import MitigationConfig
from repro.mitigations.para import probability_for
from repro.mitigations.twice import TWiCe
from repro.sim.config import SystemConfig
from repro.sim.system import run_workload
from repro.sim.timing import DDR4_2400
from repro.sim.workloads import make_workload_mixes


def test_ablation_para_probability_scaling(benchmark):
    """PARA's refresh probability versus HC_first and reliability target."""

    def run():
        table = {}
        for target in (1e-12, 1e-15, 1e-18):
            table[target] = {
                hcfirst: probability_for(hcfirst, DDR4_2400.trc_ns, target)
                for hcfirst in (100_000, 10_000, 1_000, 128)
            }
        return table

    table = benchmark(run)
    print_banner("Ablation: PARA adjacent-row refresh probability")
    rows = []
    for target, series in table.items():
        rows.append([f"BER {target:g}/hour"] + [f"{p:.4f}" for p in series.values()])
    print(format_table(["target", "100k", "10k", "1k", "128"], rows))
    for series in table.values():
        probabilities = list(series.values())
        assert probabilities == sorted(probabilities)  # lower HC_first -> higher p
    assert table[1e-18][128] > table[1e-12][128]


def test_ablation_on_die_ecc(benchmark):
    """LPDDR4 behaviours with the on-die ECC removed from the profile."""
    base_profile = profile_for("LPDDR4-1y", "A")
    no_ecc_profile = VulnerabilityProfile(
        type_node=base_profile.type_node,
        manufacturer=base_profile.manufacturer,
        hcfirst_min_k=base_profile.hcfirst_min_k,
        hcfirst_sigma=base_profile.hcfirst_sigma,
        flip_slope=base_profile.flip_slope,
        rowhammerable_fraction=base_profile.rowhammerable_fraction,
        distance_coupling=dict(base_profile.distance_coupling),
        coupling_classes=base_profile.coupling_classes,
        threshold_noise_sigma=base_profile.threshold_noise_sigma,
        on_die_ecc=False,
        remapper_name=base_profile.remapper_name,
    )

    def run():
        results = {}
        for label, profile in (("with on-die ECC", base_profile), ("without", no_ecc_profile)):
            from repro.dram.chip import DramChip

            chip = DramChip(profile, geometry=BENCH_GEOMETRY, seed=77, hcfirst_target=12_000)
            hammer_count = hammer_count_for_flip_rate(chip, target_rate=5e-3) or 150_000
            density = word_density(chip, hammer_count=hammer_count)
            probability = flip_probability_study(
                chip, hammer_counts=(50_000, 100_000, 150_000), iterations=4
            )
            results[label] = (
                single_flip_fraction(density),
                probability.monotonic_fraction,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: LPDDR4 on-die ECC on/off")
    rows = [
        [label, round(single, 3), round(monotonic, 3)]
        for label, (single, monotonic) in results.items()
    ]
    print(format_table(["configuration", "single-flip word fraction", "monotonic cell fraction"], rows))
    assert results["without"][0] > results["with on-die ECC"][0]
    assert results["without"][1] >= results["with on-die ECC"][1]


def test_ablation_twice_vs_twice_ideal(benchmark):
    """The published TWiCe design stops being viable below HC_first ~32k."""

    def run():
        rows = []
        for hcfirst in (200_000, 50_000, 32_000, 4_800, 128):
            real = TWiCe(MitigationConfig(hcfirst=hcfirst))
            ideal = TWiCe(MitigationConfig(hcfirst=hcfirst), ideal=True)
            rows.append((hcfirst, real.is_viable(), ideal.is_viable(), real.row_hammer_threshold))
        return rows

    rows = benchmark(run)
    print_banner("Ablation: TWiCe vs. TWiCe-ideal viability")
    print(format_table(["HC_first", "TWiCe viable", "TWiCe-ideal viable", "tRH"], rows))
    viability = {hcfirst: viable for hcfirst, viable, _ideal, _trh in rows}
    assert viability[200_000] and viability[50_000]
    assert not viability[4_800] and not viability[128]
    assert all(ideal for _hc, _real, ideal, _trh in rows)


def test_ablation_row_locality_sensitivity(benchmark):
    """Row-buffer locality determines how activation-bound a workload is,
    and therefore how much a per-activation mitigation mechanism costs."""
    config = SystemConfig(cores=4, rows_per_bank=4096)
    mixes = make_workload_mixes(num_mixes=1, cores=4, seed=9)

    def run():
        baseline = run_workload(config, mixes[0], dram_cycles=8_000, requests_per_core=2_000)
        return baseline

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: FR-FCFS row-hit behaviour under a multi-programmed mix")
    stats = result.controller_stats
    print(
        format_table(
            ["reads", "writes", "activations", "row hits", "avg read latency (cycles)"],
            [[stats.reads_serviced, stats.writes_serviced, stats.demand_activates,
              stats.row_hits, round(stats.average_read_latency, 1)]],
        )
    )
    assert stats.row_hits > 0
    assert stats.demand_activates > 0
