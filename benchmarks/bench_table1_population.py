"""Table 1 / appendix Tables 7-8: the characterized chip population.

Regenerates the population inventory (chips and modules per type-node and
manufacturer) and the per-module metadata tables, and benchmarks how long it
takes to instantiate a simulated population with the paper's full chip
counts.
"""

from conftest import BENCH_GEOMETRY, print_banner

from repro.analysis.report import format_table
from repro.analysis.tables import build_table1_population
from repro.dram.population import (
    TABLE7_DDR4_MODULES,
    TABLE8_DDR3_MODULES,
    make_population,
)


def test_table1_population(benchmark):
    """Regenerate Table 1 and verify the totals (1580 chips, 300 modules)."""

    def build():
        return build_table1_population()

    table = benchmark(build)
    print_banner("Table 1: Number of chips (modules) tested")
    rows = []
    for type_node, per_mfr in table.items():
        row = [type_node]
        total_chips = 0
        total_modules = 0
        for manufacturer in ("A", "B", "C"):
            if manufacturer in per_mfr:
                chips, modules = per_mfr[manufacturer]
                row.append(f"{chips} ({modules})")
                total_chips += chips
                total_modules += modules
            else:
                row.append("N/A")
        row.append(f"{total_chips} ({total_modules})")
        rows.append(row)
    print(format_table(["type-node", "Mfr. A", "Mfr. B", "Mfr. C", "Total"], rows))

    total_chips = sum(chips for per_mfr in table.values() for chips, _ in per_mfr.values())
    total_modules = sum(mods for per_mfr in table.values() for _, mods in per_mfr.values())
    assert total_chips == 1580
    assert total_modules == 300


def test_tables7_8_module_inventory(benchmark):
    """Regenerate the appendix per-module tables (metadata only)."""

    def build():
        return list(TABLE7_DDR4_MODULES), list(TABLE8_DDR3_MODULES)

    ddr4, ddr3 = benchmark(build)
    print_banner("Appendix Tables 7 (DDR4) and 8 (DDR3): module inventory")
    for name, records in (("DDR4", ddr4), ("DDR3", ddr3)):
        rows = [
            [r.module_ids, r.manufacturer, r.node, r.date, r.frequency_mts, r.trc_ns,
             r.size_gb, r.chips, r.pins, r.min_hcfirst_k]
            for r in records
        ]
        print(format_table(
            ["modules", "mfr", "node", "date", "MT/s", "tRC ns", "GB", "chips", "pins", "min HCfirst (k)"],
            rows,
            title=f"{name} modules",
        ))
    assert len(ddr4) == 18 and len(ddr3) == 17


def test_instantiate_scaled_population(benchmark):
    """Benchmark instantiating a population with one chip per configuration."""

    population = benchmark(
        make_population, chips_per_config=1, seed=7, geometry=BENCH_GEOMETRY
    )
    assert len(population) == 16
