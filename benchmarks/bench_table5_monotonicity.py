"""Table 5: fraction of cells with monotonically increasing flip probability.

Observation 14: nearly all DDR3/DDR4 cells behave monotonically as the
hammer count increases, while only about half of LPDDR4 cells appear to --
because on-die ECC masks and un-masks flips.
"""

from conftest import print_banner

from repro.analysis.report import format_table
from repro.analysis.tables import PAPER_TABLE5_MONOTONIC_PERCENT, build_table5_monotonicity
from repro.core.probability import flip_probability_study

HAMMER_COUNTS = (50_000, 75_000, 100_000, 125_000, 150_000)
ITERATIONS = 6


def test_table5_flip_probability_monotonicity(benchmark, representative_chips):
    chips = {
        key: chip for key, chip in representative_chips.items() if chip.is_rowhammerable()
    }

    def run():
        return [
            flip_probability_study(
                chip, hammer_counts=HAMMER_COUNTS, iterations=ITERATIONS
            )
            for chip in chips.values()
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table5 = build_table5_monotonicity(results)

    print_banner("Table 5: % of cells with monotonically increasing flip probability")
    rows = []
    for type_node in sorted(table5):
        row = [type_node]
        for manufacturer in ("A", "B", "C"):
            measured = table5[type_node].get(manufacturer)
            paper = PAPER_TABLE5_MONOTONIC_PERCENT.get(type_node, {}).get(manufacturer)
            measured_text = f"{measured:.1f}" if measured is not None else "N/A"
            row.append(f"{measured_text} (paper {paper if paper is not None else 'N/A'})")
        rows.append(row)
    print(format_table(["type-node", "Mfr. A", "Mfr. B", "Mfr. C"], rows))

    ddr_values = [
        value
        for type_node, per_mfr in table5.items()
        for value in per_mfr.values()
        if type_node.startswith("DDR")
    ]
    lpddr4_values = [
        value
        for type_node, per_mfr in table5.items()
        for value in per_mfr.values()
        if type_node.startswith("LPDDR4")
    ]
    assert ddr_values and lpddr4_values
    # Observation 14: DDR3/DDR4 cells are overwhelmingly monotonic, LPDDR4
    # cells much less so.
    assert min(ddr_values) > 85.0
    assert sum(lpddr4_values) / len(lpddr4_values) < sum(ddr_values) / len(ddr_values)
