"""Wall-clock speedup of the event-driven simulator on the Figure 10 mixes.

Runs the Figure 10 workload mixes (the multi-programmed 8-core mixes the
mitigation evaluation simulates) through the cycle-level simulator twice per
scenario -- once with the cycle-by-cycle reference (``step_mode="cycle"``)
and once with the event-driven fast path (``step_mode="event"``) -- asserts
the results are bit-identical, and records the measured speedups into
``BENCH_sim.json`` at the repository root.

Scenarios cover the whole Figure 10 mechanism set, each at an ``HC_first``
where the paper evaluates it, plus the no-mitigation baseline.
"""

import dataclasses
import json
import platform
import time
from pathlib import Path

from conftest import print_banner

from repro.analysis.mitigation_study import DEFAULT_MECHANISMS
from repro.mitigations.base import MitigationConfig
from repro.mitigations.registry import build_mechanism
from repro.sim.config import SystemConfig
from repro.sim.system import Simulation
from repro.sim.workloads import make_workload_mixes

#: Where the measured speedups are recorded.
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: Figure 10 evaluation scenarios: (mechanism, HC_first); None = baseline.
SCENARIOS = (
    (None, None),
    ("IncreasedRefresh", 50_000),
    ("PARA", 1_024),
    ("ProHIT", 2_000),
    ("MRLoc", 2_000),
    ("TWiCe", 50_000),
    ("TWiCe-ideal", 1_024),
    ("Ideal", 1_024),
)

NUM_MIXES = 4
DRAM_CYCLES = 20_000
REQUESTS_PER_CORE = 4_000
SEED = 0

#: Acceptance target: the event-driven fast path must be at least this much
#: faster than the cycle reference across the Figure 10 workload mixes.
TARGET_SPEEDUP = 5.0


def result_fingerprint(result):
    return (
        result.dram_cycles,
        tuple(result.core_ipcs),
        dataclasses.astuple(result.controller_stats),
        tuple(dataclasses.astuple(stats) for stats in result.core_stats),
        result.mitigation_busy_cycles,
        result.demand_busy_cycles,
    )


def build_mitigation(config, mechanism, hcfirst, mix_index):
    if mechanism is None:
        return None
    return build_mechanism(
        mechanism,
        MitigationConfig(
            hcfirst=hcfirst,
            banks=config.banks,
            rows_per_bank=config.rows_per_bank,
            timings=config.timings,
            seed=SEED + mix_index,
        ),
    )


def test_event_mode_speedup(benchmark):
    config = SystemConfig(rows_per_bank=4096)
    mixes = make_workload_mixes(num_mixes=NUM_MIXES, cores=config.cores, seed=SEED)
    traces_per_mix = [
        mix.build_traces(
            banks=config.banks,
            rows_per_bank=config.rows_per_bank,
            columns_per_row=config.columns_per_row,
            requests_per_core=REQUESTS_PER_CORE,
            seed=SEED,
        )
        for mix in mixes
    ]

    def run_all(step_mode):
        elapsed = {}
        fingerprints = {}
        for mechanism, hcfirst in SCENARIOS:
            label = mechanism or "baseline"
            total = 0.0
            for mix_index, traces in enumerate(traces_per_mix):
                mitigation = build_mitigation(config, mechanism, hcfirst, mix_index)
                simulation = Simulation(
                    config, traces, mitigation=mitigation, step_mode=step_mode
                )
                started = time.perf_counter()
                result = simulation.run(DRAM_CYCLES)
                total += time.perf_counter() - started
                fingerprints[(label, mix_index)] = result_fingerprint(result)
            elapsed[label] = total
        return elapsed, fingerprints

    cycle_times, cycle_results = run_all("cycle")
    (event_times, event_results) = benchmark.pedantic(
        lambda: run_all("event"), rounds=1, iterations=1
    )

    # Bit-identical results across all scenarios and mixes is the contract
    # the speedup rides on.
    assert event_results == cycle_results

    scenarios = {}
    for mechanism, _hcfirst in SCENARIOS:
        label = mechanism or "baseline"
        scenarios[label] = {
            "cycle_s": round(cycle_times[label], 4),
            "event_s": round(event_times[label], 4),
            "speedup": round(cycle_times[label] / event_times[label], 2),
        }
    total_cycle = sum(cycle_times.values())
    total_event = sum(event_times.values())
    speedup = total_cycle / total_event

    # Every non-baseline scenario must be part of the Figure 10 mechanism
    # set, or the recorded file would misrepresent the study.
    assert all(m in DEFAULT_MECHANISMS for m, _ in SCENARIOS if m is not None)

    payload = {
        "benchmark": "bench_sim_speed",
        "description": (
            "Wall-clock of the cycle-level simulator on the Figure 10 workload "
            "mixes: step_mode='cycle' reference vs the event-driven fast path "
            "(bit-identical results asserted)"
        ),
        "config": {
            "num_mixes": NUM_MIXES,
            "cores": config.cores,
            "rows_per_bank": config.rows_per_bank,
            "dram_cycles": DRAM_CYCLES,
            "requests_per_core": REQUESTS_PER_CORE,
            "seed": SEED,
            "mechanisms": [m or "baseline" for m, _ in SCENARIOS],
        },
        "python": platform.python_version(),
        "scenarios": scenarios,
        "total_cycle_s": round(total_cycle, 3),
        "total_event_s": round(total_event, 3),
        "speedup": round(speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print_banner("Event-driven simulator speedup on the Figure 10 workload mixes")
    for label, entry in scenarios.items():
        print(
            f"{label:18s} cycle {entry['cycle_s']:7.3f}s  "
            f"event {entry['event_s']:7.3f}s  {entry['speedup']:5.2f}x"
        )
    print(
        f"{'TOTAL':18s} cycle {total_cycle:7.3f}s  event {total_event:7.3f}s  "
        f"{speedup:5.2f}x  (recorded in {RESULT_PATH.name})"
    )

    assert speedup >= TARGET_SPEEDUP, (
        f"event-driven mode must be >= {TARGET_SPEEDUP}x faster on the Figure 10 "
        f"mixes, measured {speedup:.2f}x"
    )
