"""Wall-clock speedup of the event-driven simulator on the Figure 10 mixes.

Runs the Figure 10 workload mixes (the multi-programmed 8-core mixes the
mitigation evaluation simulates) through the cycle-level simulator twice per
scenario -- once with the cycle-by-cycle reference (``step_mode="cycle"``)
and once with the event-driven fast path (``step_mode="event"``) -- asserts
the results are bit-identical, and records the measured speedups into
``BENCH_sim.json`` at the repository root.

Scenarios cover the whole Figure 10 mechanism set, each at an ``HC_first``
where the paper evaluates it, plus the no-mitigation baseline and a
single-core *alone-IPC* scenario (the denominator runs of the
weighted-speedup metric, which take the event loop's lone-core path).  For
every scenario the event-mode run also records its
:class:`repro.sim.events.EventQueue` traffic (wake entries scheduled,
rescheduled, cancelled, popped, and the maximum queue depth), so the cost
of the event core itself stays visible alongside the speedup it buys.
"""

import dataclasses
import json
import platform
import time
from pathlib import Path

from conftest import print_banner

from repro.analysis.mitigation_study import DEFAULT_MECHANISMS
from repro.mitigations.base import MitigationConfig
from repro.mitigations.registry import build_mechanism
from repro.sim.config import SystemConfig
from repro.sim.system import Simulation
from repro.sim.workloads import make_workload_mixes

#: Where the measured speedups are recorded.
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: Figure 10 evaluation scenarios: (mechanism, HC_first); None = baseline.
SCENARIOS = (
    (None, None),
    ("IncreasedRefresh", 50_000),
    ("PARA", 1_024),
    ("ProHIT", 2_000),
    ("MRLoc", 2_000),
    ("TWiCe", 50_000),
    ("TWiCe-ideal", 1_024),
    ("Ideal", 1_024),
)

#: Label of the single-core scenario (not part of the mechanism set).
ALONE_LABEL = "alone-ipc"

NUM_MIXES = 4
DRAM_CYCLES = 20_000
REQUESTS_PER_CORE = 4_000
SEED = 0

#: Acceptance target: the event-driven fast path must be at least this much
#: faster than the cycle reference across the Figure 10 workload mixes.
#: (The indexed-scheduler rework also sped the *reference* up -- shared
#: tick-path optimizations -- which compressed this ratio from the 5.6x the
#: seed measured even though event-mode wall-clock improved; the floor
#: leaves headroom for noisy CI boxes.)
TARGET_SPEEDUP = 4.5
#: Acceptance floor for the single-core alone-IPC scenario, where the cycle
#: reference only ticks one core per DRAM cycle and the controller cost is
#: common to both modes (typical quiet-box measurement: ~2x).
ALONE_TARGET_SPEEDUP = 1.3


def result_fingerprint(result):
    return (
        result.dram_cycles,
        tuple(result.core_ipcs),
        dataclasses.astuple(result.controller_stats),
        tuple(dataclasses.astuple(stats) for stats in result.core_stats),
        result.mitigation_busy_cycles,
        result.demand_busy_cycles,
    )


def build_mitigation(config, mechanism, hcfirst, mix_index):
    if mechanism is None:
        return None
    return build_mechanism(
        mechanism,
        MitigationConfig(
            hcfirst=hcfirst,
            banks=config.banks,
            rows_per_bank=config.rows_per_bank,
            timings=config.timings,
            seed=SEED + mix_index,
        ),
    )


def merge_queue_stats(total, stats):
    for key, value in stats.to_dict().items():
        if key == "max_depth":
            total[key] = max(total.get(key, 0), value)
        else:
            total[key] = total.get(key, 0) + value
    return total


def test_event_mode_speedup(benchmark):
    config = SystemConfig(rows_per_bank=4096)
    mixes = make_workload_mixes(num_mixes=NUM_MIXES, cores=config.cores, seed=SEED)
    traces_per_mix = [
        mix.build_traces(
            banks=config.banks,
            rows_per_bank=config.rows_per_bank,
            columns_per_row=config.columns_per_row,
            requests_per_core=REQUESTS_PER_CORE,
            seed=SEED,
        )
        for mix in mixes
    ]
    #: Single-core alone-IPC runs: every trace of the first mix, run alone.
    alone_traces = [[trace] for trace in traces_per_mix[0]]

    def run_all(step_mode):
        elapsed = {}
        fingerprints = {}
        queue_stats = {}
        for mechanism, hcfirst in SCENARIOS:
            label = mechanism or "baseline"
            total = 0.0
            events = {}
            for mix_index, traces in enumerate(traces_per_mix):
                mitigation = build_mitigation(config, mechanism, hcfirst, mix_index)
                simulation = Simulation(
                    config, traces, mitigation=mitigation, step_mode=step_mode
                )
                started = time.perf_counter()
                result = simulation.run(DRAM_CYCLES)
                total += time.perf_counter() - started
                fingerprints[(label, mix_index)] = result_fingerprint(result)
                merge_queue_stats(events, simulation.event_queue.stats)
            elapsed[label] = total
            queue_stats[label] = events
        # Alone-IPC scenario: the lone-core fast path of the event loop.
        total = 0.0
        events = {}
        for trace_index, traces in enumerate(alone_traces):
            simulation = Simulation(config, traces, mitigation=None, step_mode=step_mode)
            started = time.perf_counter()
            result = simulation.run(DRAM_CYCLES)
            total += time.perf_counter() - started
            fingerprints[(ALONE_LABEL, trace_index)] = result_fingerprint(result)
            merge_queue_stats(events, simulation.event_queue.stats)
        elapsed[ALONE_LABEL] = total
        queue_stats[ALONE_LABEL] = events
        return elapsed, fingerprints, queue_stats

    cycle_times, cycle_results, _ = run_all("cycle")
    (event_times, event_results, event_queue_stats) = benchmark.pedantic(
        lambda: run_all("event"), rounds=1, iterations=1
    )

    # Bit-identical results across all scenarios and mixes is the contract
    # the speedup rides on.
    assert event_results == cycle_results

    labels = [mechanism or "baseline" for mechanism, _ in SCENARIOS]
    scenarios = {}
    for label in labels + [ALONE_LABEL]:
        scenarios[label] = {
            "cycle_s": round(cycle_times[label], 4),
            "event_s": round(event_times[label], 4),
            "speedup": round(cycle_times[label] / event_times[label], 2),
            "event_queue": event_queue_stats[label],
        }
    total_cycle = sum(cycle_times[label] for label in labels)
    total_event = sum(event_times[label] for label in labels)
    speedup = total_cycle / total_event
    alone_speedup = cycle_times[ALONE_LABEL] / event_times[ALONE_LABEL]

    # Every non-baseline scenario must be part of the Figure 10 mechanism
    # set, or the recorded file would misrepresent the study.
    assert all(m in DEFAULT_MECHANISMS for m, _ in SCENARIOS if m is not None)

    payload = {
        "benchmark": "bench_sim_speed",
        "description": (
            "Wall-clock of the cycle-level simulator on the Figure 10 workload "
            "mixes: step_mode='cycle' reference vs the event-driven fast path "
            "(bit-identical results asserted), plus single-core alone-IPC runs "
            "and the event queue's own traffic per scenario"
        ),
        "config": {
            "num_mixes": NUM_MIXES,
            "cores": config.cores,
            "rows_per_bank": config.rows_per_bank,
            "dram_cycles": DRAM_CYCLES,
            "requests_per_core": REQUESTS_PER_CORE,
            "seed": SEED,
            "mechanisms": labels,
            "alone_ipc_cores": len(alone_traces),
        },
        "python": platform.python_version(),
        "scenarios": scenarios,
        "total_cycle_s": round(total_cycle, 3),
        "total_event_s": round(total_event, 3),
        "speedup": round(speedup, 2),
        "alone_ipc_speedup": round(alone_speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
        "alone_target_speedup": ALONE_TARGET_SPEEDUP,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print_banner("Event-driven simulator speedup on the Figure 10 workload mixes")
    for label, entry in scenarios.items():
        queue = entry["event_queue"]
        print(
            f"{label:18s} cycle {entry['cycle_s']:7.3f}s  "
            f"event {entry['event_s']:7.3f}s  {entry['speedup']:5.2f}x  "
            f"(events: {queue.get('scheduled', 0)} scheduled, "
            f"{queue.get('rescheduled', 0)} rescheduled, "
            f"{queue.get('cancelled', 0)} cancelled, depth<={queue.get('max_depth', 0)})"
        )
    print(
        f"{'TOTAL (mixes)':18s} cycle {total_cycle:7.3f}s  event {total_event:7.3f}s  "
        f"{speedup:5.2f}x  (recorded in {RESULT_PATH.name})"
    )

    assert speedup >= TARGET_SPEEDUP, (
        f"event-driven mode must be >= {TARGET_SPEEDUP}x faster on the Figure 10 "
        f"mixes, measured {speedup:.2f}x"
    )
    assert alone_speedup >= ALONE_TARGET_SPEEDUP, (
        f"event-driven mode must be >= {ALONE_TARGET_SPEEDUP}x faster on "
        f"single-core alone-IPC runs, measured {alone_speedup:.2f}x"
    )
