"""Wall-clock speedup of the simulator fast paths on the Figure 10 mixes.

Runs the Figure 10 workload mixes (the multi-programmed 8-core mixes the
mitigation evaluation simulates) through the cycle-level simulator three
ways:

* once with the cycle-by-cycle reference (``step_mode="cycle"``), the
  oracle everything else is pinned to;
* once per simulation with the event-driven fast path
  (``step_mode="event"``), the pure-Python production path;
* once as a single sim-major :class:`repro.sim.batch.SimulationBatch`
  stepping *all* (scenario, mix) cells in lockstep through the vectorized
  :class:`repro.sim.kernel.BatchKernel` -- the Figure 10 study's batch
  shape (every mechanism over the same mixes).

All three produce bit-identical per-simulation statistics (asserted here,
against the cycle oracle), and the measured speedups are recorded into
``BENCH_sim.json`` at the repository root.

Scenarios cover the whole Figure 10 mechanism set, each at an ``HC_first``
where the paper evaluates it, plus the no-mitigation baseline and a
single-core *alone-IPC* scenario (the denominator runs of the
weighted-speedup metric, which take the event loop's lone-core path).  For
every scenario the event-mode run also records its
:class:`repro.sim.events.EventQueue` traffic (wake entries scheduled,
rescheduled, cancelled, popped, and the maximum queue depth), so the cost
of the event core itself stays visible alongside the speedup it buys.

On the batch floor
------------------
ISSUE 10 asked for a >= 9.0x total-speedup floor.  The spike
(``docs/kernel_spike.md``) honestly disproves that number for a
bit-identical kernel: ~62% of batch wall-clock is per-event scalar work
(FR-FCFS issue tails, queue pops, core ticks against Python request
objects and scalar mitigation hooks) that batching cannot amortize, so
the speedup asymptote over the cycle oracle is ~6.5x at unbounded batch
width and ~5.3x at the CI-feasible S=64 measured here.  The batch floor
below is therefore set from measurement with CI-noise margin, not from
the issue's aspiration; the disproof math lives in the spike note.
"""

import dataclasses
import json
import platform
import time
from pathlib import Path

from conftest import print_banner

from repro.analysis.mitigation_study import DEFAULT_MECHANISMS
from repro.mitigations.base import MitigationConfig
from repro.mitigations.registry import build_mechanism
from repro.sim.batch import SimulationBatch
from repro.sim.config import SystemConfig
from repro.sim.kernel import kernel_enabled
from repro.sim.system import Simulation
from repro.sim.workloads import make_workload_mixes

#: Where the measured speedups are recorded.
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: Figure 10 evaluation scenarios: (mechanism, HC_first); None = baseline.
SCENARIOS = (
    (None, None),
    ("IncreasedRefresh", 50_000),
    ("PARA", 1_024),
    ("ProHIT", 2_000),
    ("MRLoc", 2_000),
    ("TWiCe", 50_000),
    ("TWiCe-ideal", 1_024),
    ("Ideal", 1_024),
)

#: Label of the single-core scenario (not part of the mechanism set).
ALONE_LABEL = "alone-ipc"

NUM_MIXES = 8
DRAM_CYCLES = 20_000
REQUESTS_PER_CORE = 4_000
SEED = 0

#: Acceptance target: the event-driven fast path must be at least this much
#: faster than the cycle reference across the Figure 10 workload mixes.
#: (The indexed-scheduler rework also sped the *reference* up -- shared
#: tick-path optimizations -- which compressed this ratio from the 5.6x the
#: seed measured even though event-mode wall-clock improved.  Widening the
#: grid from 4 to 8 mixes compressed it again -- the added mixes drew
#: denser memory behavior, which leaves the event loop fewer quiet spans
#: to jump -- so the floor tracks the 8-mix measurement (~4.4x on a quiet
#: box) with CI-noise headroom.)
TARGET_SPEEDUP = 4.2
#: Acceptance floor for the sim-major kernel batch running every
#: (scenario, mix) cell at once: total cycle-oracle wall-clock over the
#: batch's wall-clock.  Measured ~5.3x at S=64 on a quiet box; the floor
#: leaves CI-noise margin.  See the module docstring for why this is not
#: the 9.0x the issue hoped for.
BATCH_TARGET_SPEEDUP = 4.6
#: Acceptance floor for the single-core alone-IPC scenario, where the cycle
#: reference only ticks one core per DRAM cycle and the controller cost is
#: common to both modes (typical quiet-box measurement: ~2x).
ALONE_TARGET_SPEEDUP = 1.3


def result_fingerprint(result):
    return (
        result.dram_cycles,
        tuple(result.core_ipcs),
        dataclasses.astuple(result.controller_stats),
        tuple(dataclasses.astuple(stats) for stats in result.core_stats),
        result.mitigation_busy_cycles,
        result.demand_busy_cycles,
    )


def build_mitigation(config, mechanism, hcfirst, mix_index):
    if mechanism is None:
        return None
    return build_mechanism(
        mechanism,
        MitigationConfig(
            hcfirst=hcfirst,
            banks=config.banks,
            rows_per_bank=config.rows_per_bank,
            timings=config.timings,
            seed=SEED + mix_index,
        ),
    )


def merge_queue_stats(total, stats):
    for key, value in stats.to_dict().items():
        if key == "max_depth":
            total[key] = max(total.get(key, 0), value)
        else:
            total[key] = total.get(key, 0) + value
    return total


def test_event_mode_speedup(benchmark):
    config = SystemConfig(rows_per_bank=4096)
    mixes = make_workload_mixes(num_mixes=NUM_MIXES, cores=config.cores, seed=SEED)
    traces_per_mix = [
        mix.build_traces(
            banks=config.banks,
            rows_per_bank=config.rows_per_bank,
            columns_per_row=config.columns_per_row,
            requests_per_core=REQUESTS_PER_CORE,
            seed=SEED,
        )
        for mix in mixes
    ]
    #: Single-core alone-IPC runs: every trace of the first mix, run alone.
    alone_traces = [[trace] for trace in traces_per_mix[0]]

    def run_all(step_mode):
        elapsed = {}
        fingerprints = {}
        queue_stats = {}
        for mechanism, hcfirst in SCENARIOS:
            label = mechanism or "baseline"
            total = 0.0
            events = {}
            for mix_index, traces in enumerate(traces_per_mix):
                mitigation = build_mitigation(config, mechanism, hcfirst, mix_index)
                simulation = Simulation(
                    config, traces, mitigation=mitigation, step_mode=step_mode
                )
                started = time.perf_counter()
                result = simulation.run(DRAM_CYCLES)
                total += time.perf_counter() - started
                fingerprints[(label, mix_index)] = result_fingerprint(result)
                merge_queue_stats(events, simulation.event_queue.stats)
            elapsed[label] = total
            queue_stats[label] = events
        # Alone-IPC scenario: the lone-core fast path of the event loop.
        total = 0.0
        events = {}
        for trace_index, traces in enumerate(alone_traces):
            simulation = Simulation(config, traces, mitigation=None, step_mode=step_mode)
            started = time.perf_counter()
            result = simulation.run(DRAM_CYCLES)
            total += time.perf_counter() - started
            fingerprints[(ALONE_LABEL, trace_index)] = result_fingerprint(result)
            merge_queue_stats(events, simulation.event_queue.stats)
        elapsed[ALONE_LABEL] = total
        queue_stats[ALONE_LABEL] = events
        return elapsed, fingerprints, queue_stats

    def run_batch():
        """All (scenario, mix) cells as one sim-major kernel batch."""
        keys = []
        trace_sets = []
        mitigations = []
        for mechanism, hcfirst in SCENARIOS:
            label = mechanism or "baseline"
            for mix_index, traces in enumerate(traces_per_mix):
                keys.append((label, mix_index))
                trace_sets.append(traces)
                mitigations.append(
                    build_mitigation(config, mechanism, hcfirst, mix_index)
                )
        batch = SimulationBatch(
            config, trace_sets, mitigations=mitigations, backend="kernel"
        )
        started = time.perf_counter()
        results = batch.run(DRAM_CYCLES)
        elapsed = time.perf_counter() - started
        fingerprints = {
            key: result_fingerprint(result) for key, result in zip(keys, results)
        }
        return elapsed, fingerprints

    cycle_times, cycle_results, _ = run_all("cycle")
    (event_times, event_results, event_queue_stats) = benchmark.pedantic(
        lambda: run_all("event"), rounds=1, iterations=1
    )

    # Bit-identical results across all scenarios and mixes is the contract
    # the speedups ride on: both fast paths against the cycle oracle.
    assert event_results == cycle_results
    assert kernel_enabled(), "the batch bench needs numpy (REPRO_SIM_KERNEL unset)"
    batch_elapsed, batch_results = run_batch()
    labels = [mechanism or "baseline" for mechanism, _ in SCENARIOS]
    mix_keys = [(label, mix) for label in labels for mix in range(NUM_MIXES)]
    assert batch_results == {key: cycle_results[key] for key in mix_keys}

    scenarios = {}
    for label in labels + [ALONE_LABEL]:
        scenarios[label] = {
            "cycle_s": round(cycle_times[label], 4),
            "event_s": round(event_times[label], 4),
            "speedup": round(cycle_times[label] / event_times[label], 2),
            "event_queue": event_queue_stats[label],
        }
    total_cycle = sum(cycle_times[label] for label in labels)
    total_event = sum(event_times[label] for label in labels)
    speedup = total_cycle / total_event
    batch_speedup = total_cycle / batch_elapsed
    alone_speedup = cycle_times[ALONE_LABEL] / event_times[ALONE_LABEL]

    # Every non-baseline scenario must be part of the Figure 10 mechanism
    # set, or the recorded file would misrepresent the study.
    assert all(m in DEFAULT_MECHANISMS for m, _ in SCENARIOS if m is not None)

    payload = {
        "benchmark": "bench_sim_speed",
        "description": (
            "Wall-clock of the cycle-level simulator on the Figure 10 workload "
            "mixes: step_mode='cycle' reference vs the event-driven fast path "
            "vs one sim-major kernel batch over every (scenario, mix) cell "
            "(bit-identical results asserted against the cycle oracle), plus "
            "single-core alone-IPC runs and the event queue's own traffic per "
            "scenario"
        ),
        "config": {
            "num_mixes": NUM_MIXES,
            "cores": config.cores,
            "rows_per_bank": config.rows_per_bank,
            "dram_cycles": DRAM_CYCLES,
            "requests_per_core": REQUESTS_PER_CORE,
            "seed": SEED,
            "mechanisms": labels,
            "alone_ipc_cores": len(alone_traces),
            "batch_sims": len(mix_keys),
        },
        "python": platform.python_version(),
        "scenarios": scenarios,
        "total_cycle_s": round(total_cycle, 3),
        "total_event_s": round(total_event, 3),
        "batch_kernel_s": round(batch_elapsed, 3),
        "speedup": round(speedup, 2),
        "batch_speedup": round(batch_speedup, 2),
        "alone_ipc_speedup": round(alone_speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
        "batch_target_speedup": BATCH_TARGET_SPEEDUP,
        "alone_target_speedup": ALONE_TARGET_SPEEDUP,
        "batch_floor_note": (
            "ISSUE 10's 9.0x floor is disproved by measurement: ~62% of batch "
            "wall-clock is per-event scalar work a bit-identical kernel cannot "
            "vectorize (asymptote ~6.5x); see docs/kernel_spike.md"
        ),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print_banner("Simulator fast-path speedups on the Figure 10 workload mixes")
    for label, entry in scenarios.items():
        queue = entry["event_queue"]
        print(
            f"{label:18s} cycle {entry['cycle_s']:7.3f}s  "
            f"event {entry['event_s']:7.3f}s  {entry['speedup']:5.2f}x  "
            f"(events: {queue.get('scheduled', 0)} scheduled, "
            f"{queue.get('rescheduled', 0)} rescheduled, "
            f"{queue.get('cancelled', 0)} cancelled, depth<={queue.get('max_depth', 0)})"
        )
    print(
        f"{'TOTAL (mixes)':18s} cycle {total_cycle:7.3f}s  event {total_event:7.3f}s  "
        f"{speedup:5.2f}x  (recorded in {RESULT_PATH.name})"
    )
    print(
        f"{'KERNEL BATCH':18s} cycle {total_cycle:7.3f}s  batch {batch_elapsed:7.3f}s  "
        f"{batch_speedup:5.2f}x  (S={len(mix_keys)} simulations in lockstep)"
    )

    assert speedup >= TARGET_SPEEDUP, (
        f"event-driven mode must be >= {TARGET_SPEEDUP}x faster on the Figure 10 "
        f"mixes, measured {speedup:.2f}x"
    )
    assert batch_speedup >= BATCH_TARGET_SPEEDUP, (
        f"the sim-major kernel batch must be >= {BATCH_TARGET_SPEEDUP}x faster "
        f"than the cycle oracle on the Figure 10 grid, measured {batch_speedup:.2f}x"
    )
    assert alone_speedup >= ALONE_TARGET_SPEEDUP, (
        f"event-driven mode must be >= {ALONE_TARGET_SPEEDUP}x faster on "
        f"single-core alone-IPC runs, measured {alone_speedup:.2f}x"
    )
