#!/usr/bin/env python3
"""CI smoke for the columnar population layer: bit identity + throughput.

Builds the paper's **full Table 1 bench population** (1580 chips across 16
type-node configurations, on a small bench geometry) and drives every
configuration through the same worst-case hammer sweep twice:

1. through :class:`repro.dram.population.ChipPopulation` -- the chip-major
   batch backend, one vectorized disturb over all chips of a configuration
   at once; and
2. chip-at-a-time through :class:`repro.dram.reference.ReferenceDramChip`
   -- the retained object-at-a-time oracle, reconstructed from the same
   construction parameters (profile, geometry, seed), so its calibration
   is bit-identical.

It then asserts the two runs agree exactly -- every chip's raw bit array
for every row, the per-chip induced-flip counters, and the shared op
stats -- and that the batch path clears a **>= 5x** hammer-phase
throughput floor over the object path.  The sweep hammers every interior
victim at several hammer counts up to 500k, past every chip's sampled
``HC_first`` (160k-500k), so nearly every chip flips real bits during the
comparison (a handful plant their weakest cell on an edge row the
interior sweep cannot reach).

Throughput is measured on the *steady-state* hammer phase: both paths
first run the fill plus a one-activation warmup pass over every victim,
which materializes the lazily sampled per-(chip, row) calibration
columns.  That sampling is scalar ``make_rng`` work pinned identical in
both backends by the bit-identity contract, so the floor deliberately
measures what the columnar layer vectorizes -- the disturb ops.

Writes ``BENCH_chip.json`` next to the other golden-job artifacts.
Exits non-zero on any identity or throughput violation.

Run with::

    PYTHONPATH=src python benchmarks/smoke_population.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.data_patterns import worst_case_pattern
from repro.dram.geometry import ChipGeometry
from repro.dram.population import ChipPopulation, make_population
from repro.dram.reference import ReferenceDramChip

#: Small bench geometry: enough rows for interior double-sided victims,
#: small enough that 1580 object-path chips stay a smoke, not a soak.
GEOMETRY = ChipGeometry(banks=1, rows_per_bank=40, row_bytes=16)

#: Population seed; chip seeds derive per (type-node, manufacturer, index).
SEED = 2020

#: Hammer counts swept per victim, accumulating (no intervening refresh).
#: The top level exceeds every sampled HC_first, so flips are guaranteed.
HC_LEVELS = (50_000, 100_000, 150_000, 250_000, 400_000, 500_000)


def interior_victims():
    return list(range(2, GEOMETRY.rows_per_bank - 2))


def warmup(target):
    """Fill the bank and run one full-strength pass over every victim.

    The warmup pass forces every lazily sampled calibration column
    (thresholds, coupling classes, epoch noise) to materialize -- the
    hammer count must be large enough to make cells eligible, or the
    class columns stay unsampled until mid-sweep -- so the timed sweep
    below measures disturb-op throughput, not shared scalar RNG sampling.
    Both paths get the identical warmup, so bit identity is unaffected.
    """
    pattern = worst_case_pattern(target.profile)
    target.fill_bank(0, pattern.victim_byte, pattern.aggressor_byte)
    for victim in interior_victims():
        target.hammer_pair(0, victim - 1, victim + 1, HC_LEVELS[-1])


def sweep(target):
    """The timed steady-state hammer sweep (no writes, no refresh)."""
    started = time.perf_counter()
    for hammer_count in HC_LEVELS:
        for victim in interior_victims():
            target.hammer_pair(0, victim - 1, victim + 1, hammer_count)
    return time.perf_counter() - started


def run_population(chips):
    """Batch path: one ChipPopulation op sequence over all chips at once."""
    population = ChipPopulation(chips)
    warmup(population)
    return population, sweep(population)


def run_reference(chips):
    """Object path: the same sequence, chip at a time, on the oracle."""
    references = [
        ReferenceDramChip(
            chip.profile, geometry=chip.geometry, seed=chip.seed, chip_id=chip.chip_id
        )
        for chip in chips
    ]
    for reference in references:
        warmup(reference)
    wall = sum(sweep(reference) for reference in references)
    return references, wall


def assert_identical(config_name, population, references):
    flips = population.flips_per_chip
    for index, reference in enumerate(references):
        assert flips[index] == reference.stats.bit_flips_induced, (
            f"{config_name}: chip {index} flip counters diverge "
            f"({flips[index]} vs {reference.stats.bit_flips_induced})"
        )
        stats = population.chip_stats(index)
        assert stats.activations == reference.stats.activations
        assert stats.row_writes == reference.stats.row_writes
        assert stats.refreshes == reference.stats.refreshes
    for row in range(GEOMETRY.rows_per_bank):
        batch = population.read_row_raw(0, row)
        for index, reference in enumerate(references):
            assert np.array_equal(batch[index], reference.read_row_raw(0, row)), (
                f"{config_name}: chip {index} row {row} raw bits diverge"
            )


def main() -> int:
    populations = make_population(None, seed=SEED, geometry=GEOMETRY)
    total_chips = sum(len(chips) for chips in populations.values())
    report = {
        "geometry": {
            "banks": GEOMETRY.banks,
            "rows_per_bank": GEOMETRY.rows_per_bank,
            "row_bytes": GEOMETRY.row_bytes,
        },
        "chips_total": total_chips,
        "hc_levels": list(HC_LEVELS),
        "victims_per_level": len(interior_victims()),
        "configs": {},
    }

    population_wall = 0.0
    reference_wall = 0.0
    chips_with_flips = 0
    for (type_node, manufacturer), chips in populations.items():
        config_name = f"{type_node.value}-{manufacturer}"
        population, pop_wall = run_population(chips)
        references, ref_wall = run_reference(chips)
        assert_identical(config_name, population, references)
        population_wall += pop_wall
        reference_wall += ref_wall
        flips = population.flips_per_chip
        chips_with_flips += int(np.count_nonzero(flips))
        report["configs"][config_name] = {
            "chips": len(chips),
            "population_wall_s": round(pop_wall, 4),
            "reference_wall_s": round(ref_wall, 4),
            "speedup": round(ref_wall / pop_wall, 2),
            "total_flips": int(flips.sum()),
            "chips_with_flips": int(np.count_nonzero(flips)),
        }

    speedup = reference_wall / population_wall
    hammer_ops = len(HC_LEVELS) * len(interior_victims())
    report.update(
        {
            "population_wall_s": round(population_wall, 3),
            "reference_wall_s": round(reference_wall, 3),
            "speedup": round(speedup, 2),
            "population_chip_ops_per_s": round(
                total_chips * hammer_ops / population_wall, 1
            ),
            "reference_chip_ops_per_s": round(
                total_chips * hammer_ops / reference_wall, 1
            ),
            "chips_with_flips": chips_with_flips,
            "identical": True,
        }
    )

    out_path = REPO_ROOT / "BENCH_chip.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    # A handful of chips plant their weakest cell on an edge row outside
    # the interior sweep; everyone else must flip for the identity check
    # to exercise the disturb path broadly.
    assert chips_with_flips >= 0.95 * total_chips, (
        f"only {chips_with_flips}/{total_chips} chips flipped bits -- the "
        "sweep must exercise the disturb path on nearly every chip"
    )
    assert speedup >= 5.0, (
        f"population batch path speedup {speedup:.2f}x is below the 5x floor"
    )
    print(f"\npopulation smoke OK ({speedup:.1f}x) -> {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
