#!/usr/bin/env python3
"""A distributed experiment sweep through ``repro.service``, end to end.

This example stands up the whole service stack *inside one process* --
scheduler, a two-worker fleet, a submitting session and a shared result
store -- so it runs anywhere with no setup.  Every piece maps one-to-one
onto a real multi-host deployment; the shell equivalent is shown next to
each step.  The moves:

1. **scheduler** -- start the lease-dispatching scheduler
   (multi-host: ``python -m repro.service scheduler --port 7075``),
2. **workers** -- attach a fleet of pull-based workers
   (on each host: ``python -m repro.service worker --host SCHED``),
3. **submit** -- run a registered study through an
   :class:`repro.ServiceExecutor`-backed session, exactly like a local
   run (or: ``python -m repro.service submit --study fig10-mitigations``),
4. **bit identity** -- compare against a local ``SerialExecutor`` run:
   the payloads are identical, whatever the fleet did,
5. **shared store** -- the scheduler checkpointed every completed unit,
   so a purely local session over the same directory replays the sweep
   from cache without recomputing anything.

Run with::

    PYTHONPATH=src python examples/distributed_sweep.py
"""

import tempfile
import threading
from pathlib import Path

from repro import ExperimentSession, ResultStore, SerialExecutor, ServiceExecutor
from repro.analysis.mitigation_study import MitigationStudyConfig
from repro.service import SchedulerThread, ServiceClient, ServiceWorker

#: A small simulator-backed Figure 10 sweep: three mitigation mechanisms
#: evaluated at two HC_first points over one workload mix.
CONFIG = MitigationStudyConfig(
    hcfirst_values=(2_000, 256),
    mechanisms=("PARA", "ProHIT", "Ideal"),
    num_mixes=1,
    rows_per_bank=512,
    dram_cycles=2_000,
    requests_per_core=400,
    seed=3,
)


def main() -> None:
    store_root = Path(tempfile.mkdtemp(prefix="distributed-sweep-")) / "store"

    # ------------------------------------------------------------------
    # 1. Scheduler.  Shell: python -m repro.service scheduler \
    #        --port 7075 --store /shared/store
    # ------------------------------------------------------------------
    with SchedulerThread(store=ResultStore(store_root)) as scheduler:
        host, port = scheduler.address
        print(f"scheduler listening on {host}:{port} (store: {store_root})")

        # --------------------------------------------------------------
        # 2. Worker fleet.  Shell, once per host:
        #        python -m repro.service worker --host HOST --port 7075
        # Workers pull unit batches under leases; if one dies, the
        # scheduler requeues its incomplete units for the others.
        # --------------------------------------------------------------
        stop = threading.Event()
        workers = [
            ServiceWorker(host, port, name=f"worker-{i}", stop_event=stop)
            for i in range(2)
        ]
        threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
        for thread in threads:
            thread.start()

        # --------------------------------------------------------------
        # 3. Submit.  A ServiceExecutor session is a drop-in for a local
        # one.  Shell: python -m repro.service submit \
        #        --study fig10-mitigations --config-json '{...}'
        # --------------------------------------------------------------
        service_run = ExperimentSession(
            executor=ServiceExecutor(host, port, label="example-fig10"), seed=3
        ).run("fig10-mitigations", CONFIG)
        print(
            f"service run: {service_run.units_total} units, "
            f"retries={service_run.retries}, requeues={service_run.requeues}"
        )

        # Live telemetry.  Shell: python -m repro.service status
        with ServiceClient(host, port) as probe:
            status = probe.status()
        for name, view in sorted(status["workers"].items()):
            print(f"  {name}: {view['units_completed']} units, {view['state']}")

        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)

    # ------------------------------------------------------------------
    # 4. Bit identity: the fleet's merged payload equals a local serial
    # run's, point for point.
    # ------------------------------------------------------------------
    serial_run = ExperimentSession(executor=SerialExecutor(), seed=3).run(
        "fig10-mitigations", CONFIG
    )
    service_points = [p.to_dict() for p in service_run.single().points]
    serial_points = [p.to_dict() for p in serial_run.single().points]
    assert service_points == serial_points
    print(f"bit identity: {len(service_points)} evaluation points match exactly")

    # ------------------------------------------------------------------
    # 5. Shared store: the scheduler checkpointed every unit, so a local
    # session over the same directory replays the sweep from cache.
    # ------------------------------------------------------------------
    replay = ExperimentSession(store=ResultStore(store_root), seed=3).run(
        "fig10-mitigations", CONFIG
    )
    assert replay.executed == 0 and replay.cache_hits == replay.units_total
    assert [p.to_dict() for p in replay.single().points] == serial_points
    print(
        f"shared-store replay: {replay.cache_hits}/{replay.units_total} units "
        "from cache, zero recomputation"
    )


if __name__ == "__main__":
    main()
