#!/usr/bin/env python3
"""End-to-end RowHammer attack scenario: attacker, memory controller, chip.

The paper's threat model assumes an attacker who can activate chosen rows
with precise timing.  This example co-simulates that scenario out of the
library's pieces:

1. an attacker core runs a dependent-access double-sided hammer trace,
2. the memory controller (optionally protected by a mitigation mechanism)
   schedules the resulting activations and any victim refreshes, and
3. every activation and victim refresh the controller issues is applied to
   the behavioural chip model, so the attack's success is decided by the
   same circuit-level disturbance model the characterization studies use.

The target is a projected future chip (Section 6.3) whose ``HC_first`` is
only a few hundred hammers, so the attack completes within a short simulated
interval.

Run with::

    python examples/rowhammer_attack_simulation.py
"""

import numpy as np

from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_chip
from repro.mitigations.base import MitigationConfig
from repro.mitigations.registry import build_mechanism
from repro.sim.config import SystemConfig
from repro.sim.system import Simulation
from repro.sim.trace import AggressorTraceGenerator

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=256, row_bytes=64)
VICTIM_ROW = 128
DRAM_CYCLES = 60_000
#: The attack targets a projected future chip (Section 6.3): HC_first = 250.
FUTURE_HCFIRST = 250


def run_attack(mechanism_name):
    """Co-simulate the attack; returns (activations, victim refreshes, bit flips)."""
    # Dependent accesses (instruction window of 1) model a pointer-chasing /
    # flush-based attacker the controller cannot coalesce into row hits.
    config = SystemConfig(cores=1, banks=1, rows_per_bank=256, instruction_window=1)
    trace = AggressorTraceGenerator(
        target_bank=0, victim_row=VICTIM_ROW, banks=1, rows_per_bank=256, seed=1
    ).generate(40_000)
    mitigation = None
    if mechanism_name is not None:
        mitigation = build_mechanism(
            mechanism_name,
            MitigationConfig(hcfirst=FUTURE_HCFIRST, banks=1, rows_per_bank=256, seed=3),
        )
    simulation = Simulation(config, [trace], mitigation=mitigation)

    # The chip under attack: as vulnerable as the projected future chip.
    chip = make_chip(
        "DDR4-new", "A", seed=9, geometry=GEOMETRY, hcfirst_target=FUTURE_HCFIRST
    )
    victim_byte, aggressor_byte = 0x00, 0xFF
    for row in range(VICTIM_ROW - 3, VICTIM_ROW + 4):
        byte = victim_byte if (row - VICTIM_ROW) % 2 == 0 else aggressor_byte
        chip.write_row(0, row, byte)

    # Wire the controller's command stream into the chip model.
    simulation.controller.activate_hook = lambda bank, row, cycle: chip.activate(bank, row, 1)
    simulation.controller.victim_refresh_hook = (
        lambda bank, row, cycle: chip.refresh_row(bank, row)
    )

    simulation.run(DRAM_CYCLES)
    stats = simulation.controller.stats

    expected = np.full(chip.geometry.row_bytes, victim_byte, dtype=np.uint8)
    observed = chip.read_row(0, VICTIM_ROW)
    victim_flips = int(np.unpackbits(observed ^ expected).sum())
    return stats.demand_activates, stats.mitigation_refreshes, victim_flips


def main() -> None:
    print(
        f"attack target: victim row {VICTIM_ROW}, projected future chip with "
        f"HC_first = {FUTURE_HCFIRST} hammers\n"
    )
    for mechanism in (None, "PARA", "TWiCe-ideal", "Ideal"):
        label = mechanism or "no mitigation"
        activations, refreshes, flips = run_attack(mechanism)
        outcome = "ATTACK SUCCEEDED" if flips > 0 else "attack blocked"
        print(
            f"{label:14s}: {activations:6d} aggressor activations, "
            f"{refreshes:4d} victim refreshes -> {flips:3d} victim bit flips ({outcome})"
        )


if __name__ == "__main__":
    main()
