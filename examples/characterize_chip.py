#!/usr/bin/env python3
"""Full single-chip RowHammer characterization (the paper's Section 5 studies).

For one chip this example reproduces, at small scale, every per-chip study of
the paper: data-pattern coverage (Figure 4 / Table 3), the hammer-count sweep
(Figure 5), the spatial distribution of flips (Figure 6), the per-64-bit-word
flip density (Figure 7), the ECC-strength analysis (Figure 9), and the
single-cell flip-probability monotonicity study (Table 5).

Run with::

    python examples/characterize_chip.py [type-node] [manufacturer]
    python examples/characterize_chip.py LPDDR4-1y A
"""

import sys

from repro import make_chip
from repro.analysis.report import format_table, render_series
from repro.core.calibration import hammer_count_for_flip_rate
from repro.core.coverage import pattern_coverage
from repro.core.ecc_analysis import ecc_word_analysis
from repro.core.first_flip import find_hcfirst
from repro.core.probability import flip_probability_study
from repro.core.spatial import spatial_distribution
from repro.core.sweeps import hammer_count_sweep, loglog_slope
from repro.core.word_density import word_density
from repro.dram.geometry import ChipGeometry

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=64, row_bytes=64)


def main() -> None:
    type_node = sys.argv[1] if len(sys.argv) > 1 else "DDR4-new"
    manufacturer = sys.argv[2] if len(sys.argv) > 2 else "A"
    chip = make_chip(type_node, manufacturer, seed=3, geometry=GEOMETRY)
    print(f"characterizing {chip.chip_id}\n")

    # HC_first (Figure 8 / Table 4).
    hcfirst = find_hcfirst(chip)
    print(f"HC_first: {hcfirst.hcfirst} (data pattern {hcfirst.data_pattern})\n")

    # Data-pattern coverage (Figure 4, Table 3).
    coverage = pattern_coverage(chip, hammer_count=150_000)
    print(format_table(
        ["data pattern", "coverage %"],
        [[name, 100.0 * value] for name, value in sorted(coverage.coverage_by_pattern.items())],
        title="Data-pattern coverage (Figure 4)",
    ))
    print(f"worst-case pattern (Table 3): {coverage.worst_case_pattern}\n")

    # Hammer-count sweep (Figure 5).
    sweep = hammer_count_sweep(chip)
    print(render_series(
        {point.hammer_count: point.flip_rate for point in sweep.points},
        label="bit flip rate", key_label="hammer count",
    ))
    print(f"log-log slope (Observation 4): {loglog_slope(sweep):.2f}\n")

    # Spatial distribution (Figure 6) and word density (Figure 7) at a
    # rate-normalized hammer count, as the paper does.
    normalized_hc = hammer_count_for_flip_rate(chip, target_rate=5e-3) or 150_000
    spatial = spatial_distribution(chip, hammer_count=normalized_hc)
    print(render_series(
        dict(sorted(spatial.fraction_by_offset().items())),
        label="fraction of flips", key_label="row offset",
    ))
    print()
    density = word_density(chip, hammer_count=normalized_hc)
    print(render_series(
        dict(sorted(density.fraction_by_flip_count().items())),
        label="fraction of words", key_label="flips per 64-bit word",
    ))
    print()

    # ECC-strength analysis (Figure 9) -- only meaningful without on-die ECC.
    if not chip.has_on_die_ecc:
        ecc = ecc_word_analysis(chip, hammer_limit=250_000)
        print(render_series(
            {k: v for k, v in ecc.hc_first_word_with.items()},
            label="HC for first word with k flips", key_label="k",
        ))
        print(f"SEC ECC would improve HC_first by {ecc.multiplier(1, 2):.2f}x\n")

    # Single-cell flip-probability monotonicity (Table 5).
    probability = flip_probability_study(
        chip, hammer_counts=(40_000, 80_000, 120_000, 150_000), iterations=5
    )
    print(
        f"cells observed: {probability.cells_observed}, "
        f"monotonic fraction: {100 * probability.monotonic_fraction:.1f}%"
    )


if __name__ == "__main__":
    main()
