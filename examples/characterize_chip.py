#!/usr/bin/env python3
"""Full single-chip RowHammer characterization (the paper's Section 5 studies).

For one chip this example reproduces, at small scale, every per-chip study of
the paper, driving them all through one :class:`repro.ExperimentSession`:
the ``HC_first`` search (Figure 8 / Table 4), data-pattern coverage
(Figure 4 / Table 3), the hammer-count sweep (Figure 5), the spatial
distribution of flips (Figure 6), the per-64-bit-word flip density
(Figure 7), the ECC-strength analysis (Figure 9), and the single-cell
flip-probability monotonicity study (Table 5).

Each study is looked up by its registry name and executed with a frozen
config dataclass; ``session.run(...)`` returns one result per chip, so the
same code scales from this single chip to a full population.

Run with::

    python examples/characterize_chip.py [type-node] [manufacturer]
    python examples/characterize_chip.py LPDDR4-1y A
"""

import sys

from repro import ExperimentSession, make_chip
from repro.analysis.report import format_table, render_series
from repro.core.coverage import CoverageStudyConfig
from repro.core.ecc_analysis import EccWordStudyConfig
from repro.core.probability import ProbabilityStudyConfig
from repro.core.spatial import SpatialStudyConfig
from repro.core.sweeps import loglog_slope
from repro.core.word_density import WordDensityStudyConfig
from repro.dram.geometry import ChipGeometry

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=64, row_bytes=64)

#: Flip rate the spatial / word-density studies are normalized to (the
#: paper's 1e-6, scaled to the much smaller simulated chip).
TARGET_RATE = 5e-3


def main() -> None:
    type_node = sys.argv[1] if len(sys.argv) > 1 else "DDR4-new"
    manufacturer = sys.argv[2] if len(sys.argv) > 2 else "A"
    chip = make_chip(type_node, manufacturer, seed=3, geometry=GEOMETRY)
    session = ExperimentSession(chip, seed=3)
    print(f"characterizing {chip.chip_id}\n")

    # HC_first (Figure 8 / Table 4).
    hcfirst = session.run("fig8-hcfirst").single()
    print(f"HC_first: {hcfirst.hcfirst} (data pattern {hcfirst.data_pattern})\n")

    # Data-pattern coverage (Figure 4, Table 3).
    coverage = session.run(
        "fig4-coverage", CoverageStudyConfig(hammer_count=150_000)
    ).single()
    print(format_table(
        ["data pattern", "coverage %"],
        [[name, 100.0 * value] for name, value in sorted(coverage.coverage_by_pattern.items())],
        title="Data-pattern coverage (Figure 4)",
    ))
    print(f"worst-case pattern (Table 3): {coverage.worst_case_pattern}\n")

    # Hammer-count sweep (Figure 5).
    sweep = session.run("fig5-hc-sweep").single()
    print(render_series(
        {point.hammer_count: point.flip_rate for point in sweep.points},
        label="bit flip rate", key_label="hammer count",
    ))
    print(f"log-log slope (Observation 4): {loglog_slope(sweep):.2f}\n")

    # Spatial distribution (Figure 6) and word density (Figure 7) at a
    # rate-normalized hammer count, as the paper does; the studies calibrate
    # the chip-specific hammer count themselves when target_rate is set.
    spatial = session.run(
        "fig6-spatial", SpatialStudyConfig(target_rate=TARGET_RATE)
    ).single()
    print(render_series(
        dict(sorted(spatial.fraction_by_offset().items())),
        label="fraction of flips", key_label="row offset",
    ))
    print()
    density = session.run(
        "fig7-word-density", WordDensityStudyConfig(target_rate=TARGET_RATE)
    ).single()
    print(render_series(
        dict(sorted(density.fraction_by_flip_count().items())),
        label="fraction of words", key_label="flips per 64-bit word",
    ))
    print()

    # ECC-strength analysis (Figure 9) -- only meaningful without on-die ECC.
    if not chip.has_on_die_ecc:
        ecc = session.run(
            "fig9-ecc-words", EccWordStudyConfig(hammer_limit=250_000)
        ).single()
        print(render_series(
            {k: v for k, v in ecc.hc_first_word_with.items()},
            label="HC for first word with k flips", key_label="k",
        ))
        print(f"SEC ECC would improve HC_first by {ecc.multiplier(1, 2):.2f}x\n")

    # Single-cell flip-probability monotonicity (Table 5).
    probability = session.run(
        "table5-flip-probability",
        ProbabilityStudyConfig(hammer_counts=(40_000, 80_000, 120_000, 150_000), iterations=5),
    ).single()
    print(
        f"cells observed: {probability.cells_observed}, "
        f"monotonic fraction: {100 * probability.monotonic_fraction:.1f}%"
    )

    # The session tracked every chip operation the studies performed.
    print(f"\ntotal activations across all studies: {chip.stats.activations:,}")


if __name__ == "__main__":
    main()
