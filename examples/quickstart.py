#!/usr/bin/env python3
"""Quickstart: create a simulated DRAM chip and characterize its RowHammer vulnerability.

This example walks through the core workflow of the library:

1. build a chip of a given DRAM type-node configuration and manufacturer,
2. run a worst-case double-sided hammer against one victim row,
3. search for the chip's ``HC_first`` through the session API (the minimum
   hammer count that causes the first bit flip -- the paper's headline
   vulnerability metric), and
4. compare chips across technology generations (Observation 10) by fanning
   the same registered study over a small population.

Run with::

    python examples/quickstart.py
"""

from repro import DoubleSidedHammer, ExperimentSession, make_chip, profile_for
from repro.dram.geometry import ChipGeometry

# A small simulated chip: the vulnerability model calibrates itself to the
# simulated cell count, so chip-level metrics remain meaningful.
GEOMETRY = ChipGeometry(banks=1, rows_per_bank=64, row_bytes=64)


def main() -> None:
    # 1. Build an LPDDR4-1y chip from manufacturer A -- the most vulnerable
    #    configuration the paper characterizes (HC_first as low as 4.8k).
    chip = make_chip("LPDDR4-1y", manufacturer="A", seed=1, geometry=GEOMETRY)
    print(f"chip: {chip.chip_id}")
    print(f"  type-node:     {chip.profile.type_node}")
    print(f"  on-die ECC:    {chip.has_on_die_ecc}")
    print(f"  worst pattern: {chip.profile.worst_case_pattern_bytes()}")

    # 2. Hammer one victim row with the worst-case double-sided pattern.
    hammer = DoubleSidedHammer(chip)
    victim = chip.geometry.rows_per_bank // 2
    result = hammer.hammer_victim(bank=0, victim_row=victim, hammer_count=150_000)
    print(f"\nhammering victim row {victim} 150k times:")
    print(f"  aggressor rows: {result.aggressor_rows}")
    print(f"  bit flips observed: {result.num_bit_flips}")
    for flip in result.flips[:5]:
        print(
            f"    row {flip.row} (offset {flip.offset_from_victim:+d}), "
            f"bit {flip.bit_index}: {flip.expected_bit} -> {flip.observed_bit}"
        )

    # 3. Find HC_first through the session API: every paper analysis is a
    #    registered study a session can run over any chip population.
    session = ExperimentSession(chip, seed=1)
    hcfirst = session.run("fig8-hcfirst").single()
    print(f"\nHC_first search: {hcfirst.hcfirst} hammers (victim row {hcfirst.victim_row})")

    # 4. Compare technology generations of the same manufacturer, using for
    #    each generation a chip as vulnerable as the weakest chip the paper
    #    found in that configuration (Table 4).  One session call fans the
    #    study over the whole generation population.
    generation_chips = [
        make_chip(
            type_node,
            "A",
            seed=7,
            geometry=GEOMETRY,
            hcfirst_target=profile_for(type_node, "A").hcfirst_min,
        )
        for type_node in ("DDR4-old", "DDR4-new", "LPDDR4-1x", "LPDDR4-1y")
    ]
    generations = ExperimentSession(generation_chips, seed=7)
    print("\nHC_first across generations (manufacturer A, weakest chip per generation):")
    for generation_result in generations.run("fig8-hcfirst").payloads():
        profile = profile_for(generation_result.type_node, "A")
        print(
            f"  {generation_result.type_node:10s}: HC_first = {generation_result.hcfirst}"
            f"  (paper: {profile.hcfirst_min_k}k)"
        )


if __name__ == "__main__":
    main()
