#!/usr/bin/env python3
"""The ``repro.experiments`` session API end to end.

This example shows the five moves the orchestration layer is built around:

1. **register** -- define a new study as a config dataclass plus a
   ``run(chip, config)`` function; one decorator makes it a first-class
   citizen next to the paper's built-in studies,
2. **session** -- build an :class:`repro.ExperimentSession` over a chip
   population and fan the study out across it,
3. **parallel** -- swap in a :class:`repro.ParallelExecutor` and get
   bit-identical results from a process pool, and
4. **cached rerun** -- attach a :class:`repro.ResultStore` and watch the
   second run replay from disk without a single chip activation.
5. **decompose** -- declare a *sharded* study: a ``decompose`` enumerating
   independent :class:`repro.WorkUnit` shards of the grid, a ``unit_runner``
   executing one shard, and a deterministic ``merge``.  Sessions then cache
   every shard individually, so a crashed sweep resumes from its completed
   units and an edited grid replays everything it did not touch.

Run with::

    python examples/session_api.py
"""

import tempfile
from dataclasses import dataclass

from repro import (
    DoubleSidedHammer,
    ExperimentSession,
    ParallelExecutor,
    ResultStore,
    WorkUnit,
    list_studies,
    register_study,
)
from repro.dram.geometry import ChipGeometry
from repro.dram.population import make_population

GEOMETRY = ChipGeometry(banks=1, rows_per_bank=48, row_bytes=32)


# ----------------------------------------------------------------------
# 1. Register a custom study: victim-row flip count at one hammer count.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VictimFlipConfig:
    """Parameters of the demo study."""

    hammer_count: int = 100_000
    victim_row: int = GEOMETRY.rows_per_bank // 2


@register_study("demo-victim-flips", config=VictimFlipConfig)
def run_victim_flips(chip, config):
    """Bit flips observed in one victim's neighbourhood at a fixed HC."""
    hammer = DoubleSidedHammer(chip)
    result = hammer.hammer_victim(
        bank=0, victim_row=config.victim_row, hammer_count=config.hammer_count
    )
    return {"chip": chip.chip_id, "flips": result.num_bit_flips}


# ----------------------------------------------------------------------
# 5. Register a *decomposable* study: a hammer-count sweep where every
#    count is its own work unit -- independently executed, independently
#    cached, merged in decomposition order.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlipSweepConfig:
    """A grid of hammer counts to shard across work units."""

    hammer_counts: tuple = (40_000, 80_000, 120_000)
    victim_row: int = GEOMETRY.rows_per_bank // 2


def decompose_flip_sweep(config):
    """One unit per hammer count.  Per the WorkUnit cache contract, params
    carry every config field the unit's payload depends on."""
    return [
        WorkUnit(
            study="demo-flip-sweep",
            unit_id=f"hc{hammer_count}",
            params={"hammer_count": hammer_count, "victim_row": config.victim_row},
        )
        for hammer_count in config.hammer_counts
    ]


def run_flip_sweep_unit(chip, config, unit):
    """Execute one shard: hammer the victim at the unit's count."""
    params = unit.param_dict
    result = DoubleSidedHammer(chip).hammer_victim(
        bank=0, victim_row=params["victim_row"], hammer_count=params["hammer_count"]
    )
    return (params["hammer_count"], result.num_bit_flips)


def merge_flip_sweep(config, payloads):
    """Deterministic merge: payloads arrive in decomposition order."""
    return dict(payloads)


@register_study(
    "demo-flip-sweep",
    config=FlipSweepConfig,
    decompose=decompose_flip_sweep,
    unit_runner=run_flip_sweep_unit,
    merge=merge_flip_sweep,
)
def run_flip_sweep(chip, config):
    """Monolithic reference: the same sweep in one loop."""
    return {
        hammer_count: DoubleSidedHammer(chip)
        .hammer_victim(bank=0, victim_row=config.victim_row, hammer_count=hammer_count)
        .num_bit_flips
        for hammer_count in config.hammer_counts
    }


def main() -> None:
    print("registered studies:")
    for name in list_studies():
        print(f"  {name}")

    # ------------------------------------------------------------------
    # 2. Build a session over a small two-configuration population.
    # ------------------------------------------------------------------
    population = make_population(
        chips_per_config=4,
        seed=42,
        geometry=GEOMETRY,
        configurations=[("DDR4-new", "A"), ("LPDDR4-1y", "A")],
    )
    session = ExperimentSession(population, seed=42)
    outcome = session.run("demo-victim-flips")
    print(f"\nserial run over {len(session.chips)} chips:")
    for payload in outcome.payloads():
        print(f"  {payload['chip']}: {payload['flips']} flips")

    # ------------------------------------------------------------------
    # 3. Same study through a process pool: bit-identical results.
    # ------------------------------------------------------------------
    parallel = ExperimentSession(population, executor=ParallelExecutor(), seed=42)
    parallel_outcome = parallel.run("demo-victim-flips")
    assert parallel_outcome.payloads() == outcome.payloads()
    print("\nparallel run matches the serial run bit for bit")

    # ------------------------------------------------------------------
    # 4. Cached rerun: a stored result replays without touching the chip.
    # ------------------------------------------------------------------
    store = ResultStore(tempfile.mkdtemp(prefix="repro-store-"))
    cached_session = ExperimentSession(population, store=store, seed=42)
    first = cached_session.run("demo-victim-flips")
    for chip in cached_session.chips:
        chip.stats.reset()
    second = cached_session.run("demo-victim-flips")
    activations = sum(chip.stats.activations for chip in cached_session.chips)
    print(
        f"\ncached rerun: {second.cache_hits}/{len(second.results)} results from the store, "
        f"{activations} chip activations performed"
    )
    assert second.cache_hits == len(session.chips)
    assert activations == 0
    assert second.payloads() == first.payloads()

    # ------------------------------------------------------------------
    # 5. Sharded study: per-unit caching and crash resume.
    # ------------------------------------------------------------------
    store_root = tempfile.mkdtemp(prefix="repro-shard-store-")
    chip = session.chips[0]
    sweep_session = ExperimentSession(chip, store=ResultStore(store_root), seed=42)
    sweep = sweep_session.run("demo-flip-sweep")
    print(
        f"\nsharded sweep: {sweep.executed} work units executed "
        f"({sweep.units_total} total) -> {sweep.single()}"
    )

    # Simulate a crash that lost one unit's cache entry, then resume: only
    # the missing unit re-executes and the merged payload is identical.
    shard_store = ResultStore(store_root)
    unit_files = shard_store.entry_paths("demo-flip-sweep", units_only=True)
    unit_files[0].unlink()
    resumed = ExperimentSession(chip, store=ResultStore(store_root), seed=42).run(
        "demo-flip-sweep"
    )
    print(
        f"resume after losing 1 unit entry: {resumed.executed} executed, "
        f"{resumed.cache_hits} replayed from cache"
    )
    assert resumed.executed == 1
    assert resumed.cache_hits == sweep.units_total - 1
    assert resumed.single() == sweep.single()


if __name__ == "__main__":
    main()
