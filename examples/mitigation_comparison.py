#!/usr/bin/env python3
"""Compare RowHammer mitigation mechanisms as chips become more vulnerable.

A scaled-down version of the paper's Figure 10 study: multi-programmed
workload mixes run on the cycle-level memory-system simulator with each
mitigation mechanism attached, sweeping the protected ``HC_first`` from
today's chips (tens of thousands of hammers) down to the projected future
values (hundreds), and reporting normalized system performance and DRAM
bandwidth overhead.

Run with::

    python examples/mitigation_comparison.py
"""

from repro.analysis.mitigation_study import run_mitigation_study
from repro.analysis.report import format_table
from repro.sim.config import SystemConfig
from repro.sim.workloads import make_workload_mixes


def main() -> None:
    config = SystemConfig(rows_per_bank=4096)
    mixes = make_workload_mixes(num_mixes=2, cores=config.cores, seed=1)
    print(f"workload mixes: {[mix.name for mix in mixes]}")
    print(f"aggregate MPKI: {[round(mix.aggregate_mpki) for mix in mixes]}\n")

    study = run_mitigation_study(
        system_config=config,
        workload_mixes=mixes,
        hcfirst_values=(50_000, 6_400, 2_000, 512, 128),
        mechanisms=("IncreasedRefresh", "PARA", "ProHIT", "MRLoc", "TWiCe-ideal", "Ideal"),
        dram_cycles=10_000,
        requests_per_core=2_000,
        seed=2,
    )

    rows = []
    for point in sorted(study.points, key=lambda p: (p.mechanism, -p.hcfirst)):
        rows.append(
            [
                point.mechanism,
                point.hcfirst,
                round(point.normalized_performance_avg, 1),
                round(point.bandwidth_overhead_avg, 2),
            ]
        )
    print(
        format_table(
            ["mechanism", "HC_first", "normalized perf %", "DRAM bandwidth overhead %"],
            rows,
            title="Mitigation mechanism scaling (Figure 10, scaled down)",
        )
    )

    print("\nKey takeaways (compare with the paper's Section 6.2.2):")
    for mechanism in ("PARA", "Ideal"):
        series = study.series_for(mechanism)
        if not series:
            continue
        most_vulnerable = min(series)
        point = series[most_vulnerable]
        print(
            f"  {mechanism:6s} at HC_first={most_vulnerable}: "
            f"{point.normalized_performance_avg:.1f}% of baseline performance"
        )


if __name__ == "__main__":
    main()
